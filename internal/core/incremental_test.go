package core

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"collabscope/internal/checkpoint"
	"collabscope/internal/embed"
	"collabscope/internal/linalg"
	"collabscope/internal/obs"
	"collabscope/internal/schema"
)

// incRandSet builds a seeded random single-schema signature set.
func incRandSet(rng *rand.Rand, name string, n, d int, offset float64) *embed.SignatureSet {
	ids := make([]schema.ElementID, n)
	m := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		ids[i] = schema.AttributeID(name, "T", string(rune('a'+i%26))+string(rune('0'+i/26)))
		row := m.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64() + offset*float64(j%4)
		}
	}
	return &embed.SignatureSet{IDs: ids, Matrix: m}
}

// renameElements restamps a set's element IDs so added batches never
// collide with the base set.
func renameElements(set *embed.SignatureSet, suffix string) *embed.SignatureSet {
	ids := make([]schema.ElementID, len(set.IDs))
	for i, id := range set.IDs {
		ids[i] = schema.AttributeID(id.Schema, id.Table, id.Attribute+suffix)
	}
	return &embed.SignatureSet{IDs: ids, Matrix: set.Matrix}
}

func sameVerdicts(t *testing.T, got, want map[schema.ElementID]bool, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d verdicts, want %d", what, len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("%s: verdict for %s missing", what, id)
		}
		if g != w {
			t.Fatalf("%s: verdict for %s is %v, want %v", what, id, g, w)
		}
	}
}

// TestScoperIncrementalMatchesFromScratch pins the rows-path exactness
// claim: in the n < d regime every incremental mutation refits via the
// from-scratch code path, so a mutated Scoper scopes bit-identically to a
// fresh Scoper built over the same final sets.
func TestScoperIncrementalMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 16
	sets := []*embed.SignatureSet{
		incRandSet(rng, "S0", 9, d, 0.4),
		incRandSet(rng, "S1", 11, d, 0.1),
		incRandSet(rng, "S2", 8, d, 0.7),
	}
	s, err := NewScoper(sets)
	if err != nil {
		t.Fatal(err)
	}

	// Add three elements to S0.
	add := renameElements(incRandSet(rng, "S0", 3, d, 0.4), "_new")
	if err := s.AddElements(0, add); err != nil {
		t.Fatal(err)
	}
	if got := s.ModelVersion(0); got != 2 {
		t.Fatalf("version after AddElements: %d, want 2", got)
	}
	// Remove two elements from S1.
	if err := s.RemoveElements(1, sets[1].IDs[0], sets[1].IDs[4]); err != nil {
		t.Fatal(err)
	}
	// Merge a partial fit into S2.
	part, err := NewPartialFit(renameElements(incRandSet(rng, "S2", 4, d, 0.7), "_shard"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MergePartialFits(2, part); err != nil {
		t.Fatal(err)
	}
	if got := s.ModelVersion(1); got != 2 {
		t.Fatalf("version after RemoveElements: %d, want 2", got)
	}

	fresh, err := NewScoper(s.sets)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.6, 0.9} {
		mi, err := s.Models(v)
		if err != nil {
			t.Fatal(err)
		}
		mf, err := fresh.Models(v)
		if err != nil {
			t.Fatal(err)
		}
		for k := range mi {
			if mi[k].Range != mf[k].Range || mi[k].Components() != mf[k].Components() {
				t.Fatalf("v=%v schema %d: incremental model (range %v, %d comps) differs from from-scratch (range %v, %d comps)",
					v, k, mi[k].Range, mi[k].Components(), mf[k].Range, mf[k].Components())
			}
		}
		ki, err := s.Scope(v)
		if err != nil {
			t.Fatal(err)
		}
		kf, err := fresh.Scope(v)
		if err != nil {
			t.Fatal(err)
		}
		sameVerdicts(t, ki, kf, "incremental vs from-scratch scope")
	}
}

// TestScoperIncrementalStatsPath exercises the rows ≥ dims regime, where
// refits run from the maintained sufficient statistics: models must agree
// with a from-scratch Scoper within linalg.StatsFitTolerance and verdicts
// must coincide.
func TestScoperIncrementalStatsPath(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := 6
	sets := []*embed.SignatureSet{
		incRandSet(rng, "S0", 20, d, 0.4),
		incRandSet(rng, "S1", 18, d, 0.2),
	}
	s, err := NewScoper(sets)
	if err != nil {
		t.Fatal(err)
	}
	add := renameElements(incRandSet(rng, "S0", 5, d, 0.4), "_new")
	if err := s.AddElements(0, add); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveElements(1, sets[1].IDs[3], sets[1].IDs[7], sets[1].IDs[11]); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewScoper(s.sets)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := s.Models(0.85)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := fresh.Models(0.85)
	if err != nil {
		t.Fatal(err)
	}
	for k := range mi {
		if mi[k].Components() != mf[k].Components() {
			t.Fatalf("schema %d: stats path retained %d components, from-scratch %d", k, mi[k].Components(), mf[k].Components())
		}
		diff := math.Abs(mi[k].Range - mf[k].Range)
		if diff > linalg.StatsFitTolerance*math.Max(mi[k].Range, mf[k].Range)+linalg.StatsFitTolerance {
			t.Fatalf("schema %d: stats-path range %v vs from-scratch %v", k, mi[k].Range, mf[k].Range)
		}
	}
	ki, err := s.Scope(0.85)
	if err != nil {
		t.Fatal(err)
	}
	kf, err := fresh.Scope(0.85)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, ki, kf, "stats-path vs from-scratch scope")
}

// TestAssessDeltaMatchesScope is the delta-assessment acceptance test:
// after every mutation the delta verdicts equal a full ScopeContext at the
// same v, while the report — and the obs counters — prove strictly fewer
// element×model passes were computed.
func TestAssessDeltaMatchesScope(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := 12
	sets := []*embed.SignatureSet{
		incRandSet(rng, "S0", 10, d, 0.5),
		incRandSet(rng, "S1", 12, d, 0.2),
		incRandSet(rng, "S2", 9, d, 0.8),
		incRandSet(rng, "S3", 11, d, 0.3),
	}
	s, err := NewScoper(sets)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.NewContext(context.Background(), reg, nil)
	const v = 0.9

	// Cold round: everything is scored, like a full pass.
	keep, rep, err := s.AssessDelta(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.ScopeContext(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, keep, full, "cold delta round")
	if rep.Rescored != s.PassOperations() || rep.Reused != 0 || rep.Refits != len(sets) {
		t.Fatalf("cold round report %+v, want rescored=%d reused=0 refits=%d", rep, s.PassOperations(), len(sets))
	}

	// Unchanged round: every score is reused.
	_, rep, err = s.AssessDelta(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rescored != 0 || rep.Reused != s.PassOperations() || rep.Refits != 0 {
		t.Fatalf("idle round report %+v, want everything reused", rep)
	}

	// Evolve one schema: add to S1, then delta-assess.
	add := renameElements(incRandSet(rng, "S1", 3, d, 0.2), "_new")
	if err := s.AddElements(1, add); err != nil {
		t.Fatal(err)
	}
	keep, rep, err = s.AssessDelta(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	full, err = s.ScopeContext(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, keep, full, "delta after AddElements")
	if rep.Rescored+rep.Reused != s.PassOperations() {
		t.Fatalf("report %+v does not partition %d passes", rep, s.PassOperations())
	}
	if rep.Rescored >= s.PassOperations() || rep.Reused == 0 || rep.Refits != 1 {
		t.Fatalf("delta after AddElements did not save work: %+v (full=%d)", rep, s.PassOperations())
	}

	// Remove from S2, then delta-assess.
	if err := s.RemoveElements(2, s.sets[2].IDs[1], s.sets[2].IDs[5]); err != nil {
		t.Fatal(err)
	}
	keep, rep, err = s.AssessDelta(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	full, err = s.ScopeContext(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, keep, full, "delta after RemoveElements")
	if rep.Rescored >= s.PassOperations() || rep.Reused == 0 {
		t.Fatalf("delta after RemoveElements did not save work: %+v", rep)
	}

	// Wholesale UpdateSchema drops S0's cache but stays correct.
	repl := incRandSet(rand.New(rand.NewSource(99)), "S0", 7, d, 0.5)
	if err := s.UpdateSchema(0, repl); err != nil {
		t.Fatal(err)
	}
	keep, rep, err = s.AssessDelta(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	full, err = s.ScopeContext(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, keep, full, "delta after UpdateSchema")
	if rep.Reused == 0 {
		t.Fatalf("pairs not involving the replaced schema should be reused: %+v", rep)
	}

	if reg.Counter("core.delta.reused").Value() == 0 || reg.Counter("core.delta.rescored").Value() == 0 {
		t.Fatal("obs counters core.delta.* did not record the delta rounds")
	}

	// Changing v drops the cache: a full re-score, still correct.
	keep, rep, err = s.AssessDelta(ctx, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	full, err = s.ScopeContext(ctx, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, keep, full, "delta after v change")
	if rep.Reused != 0 || rep.Rescored != s.PassOperations() {
		t.Fatalf("v change must invalidate the cache: %+v", rep)
	}

	if _, _, err := s.AssessDelta(ctx, 0); err == nil {
		t.Fatal("AssessDelta accepted v=0")
	}
}

// TestScoperMutationErrors covers the incremental mutators' validation
// surface, including rejection paths that must leave the scoper usable.
func TestScoperMutationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := 8
	sets := []*embed.SignatureSet{
		incRandSet(rng, "S0", 6, d, 0.4),
		incRandSet(rng, "S1", 5, d, 0.1),
	}
	s, err := NewScoper(sets)
	if err != nil {
		t.Fatal(err)
	}
	add := renameElements(incRandSet(rng, "S0", 2, d, 0.4), "_x")
	if err := s.AddElements(7, add); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range index: %v", err)
	}
	if err := s.AddElements(1, add); err == nil || !strings.Contains(err.Error(), "S1") {
		t.Fatalf("schema mismatch: %v", err)
	}
	wrong := incRandSet(rng, "S0", 2, d+1, 0)
	if err := s.AddElements(0, wrong); err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("dimension mismatch: %v", err)
	}
	if err := s.AddElements(0, &embed.SignatureSet{Matrix: linalg.NewDense(1, d)}); err == nil {
		t.Fatal("empty add accepted")
	}
	dup := &embed.SignatureSet{IDs: []schema.ElementID{sets[0].IDs[0]}, Matrix: linalg.NewDense(1, d)}
	if err := s.AddElements(0, dup); err == nil || !strings.Contains(err.Error(), "already part") {
		t.Fatalf("duplicate add: %v", err)
	}
	if err := s.RemoveElements(0); err == nil {
		t.Fatal("empty removal accepted")
	}
	if err := s.RemoveElements(0, schema.AttributeID("S0", "T", "nope")); err == nil || !strings.Contains(err.Error(), "not part") {
		t.Fatalf("unknown removal: %v", err)
	}
	if err := s.RemoveElements(0, s.sets[0].IDs...); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("emptying removal: %v", err)
	}
	if err := s.MergePartialFits(0); err == nil {
		t.Fatal("empty merge accepted")
	}
	if s.ModelVersion(0) != 1 || s.ModelVersion(1) != 1 {
		t.Fatal("failed mutations must not bump versions")
	}
	if s.ModelVersion(-1) != 0 || s.ModelVersion(9) != 0 {
		t.Fatal("out-of-range ModelVersion should report 0")
	}
	// A rejected refit (non-finite added rows) rolls the scoper back.
	bad := renameElements(incRandSet(rng, "S0", 2, d, 0.4), "_bad")
	bad.Matrix.Set(0, 0, math.NaN())
	before, err := s.Scope(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddElements(0, bad); err == nil {
		t.Fatal("non-finite add accepted")
	}
	after, err := s.Scope(0.9)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, after, before, "scope after rejected add")
}

// TestTrainFromPartialFits pins the distributed-merge training path against
// monolithic Train, plus its validation surface.
func TestTrainFromPartialFits(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	whole := incRandSet(rng, "S", 30, 7, 0.3)
	cuts := []int{0, 9, 17, 30}
	parts := make([]*PartialFit, 0, 3)
	for c := 0; c+1 < len(cuts); c++ {
		lo, hi := cuts[c], cuts[c+1]
		sub := &embed.SignatureSet{IDs: whole.IDs[lo:hi], Matrix: linalg.NewDense(hi-lo, 7)}
		for k := lo; k < hi; k++ {
			copy(sub.Matrix.RowView(k-lo), whole.Matrix.RowView(k))
		}
		p, err := NewPartialFit(sub)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	got, err := TrainFromPartialFits(0.9, parts...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Train(whole, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != "S" || got.Components() != want.Components() {
		t.Fatalf("merged model: schema %q, %d comps; want %q, %d", got.Schema, got.Components(), want.Schema, want.Components())
	}
	diff := math.Abs(got.Range - want.Range)
	if diff > linalg.StatsFitTolerance*math.Max(got.Range, want.Range)+linalg.StatsFitTolerance {
		t.Fatalf("merged range %v vs monolithic %v", got.Range, want.Range)
	}

	if _, err := TrainFromPartialFits(0.9); err == nil {
		t.Fatal("no parts accepted")
	}
	if _, err := TrainFromPartialFits(0, parts...); err == nil {
		t.Fatal("v=0 accepted")
	}
	other, _ := NewPartialFit(incRandSet(rng, "OTHER", 3, 7, 0))
	if _, err := TrainFromPartialFits(0.9, parts[0], other); err == nil || !strings.Contains(err.Error(), "OTHER") {
		t.Fatalf("mixed-schema parts: %v", err)
	}
	if _, err := TrainFromPartialFits(0.9, parts[0], parts[0]); err == nil || !strings.Contains(err.Error(), "more than one") {
		t.Fatalf("duplicate elements across parts: %v", err)
	}
	broken := &PartialFit{Set: parts[0].Set, Stats: linalg.NewPCAStats(7)}
	if _, err := TrainFromPartialFits(0.9, broken); err == nil || !strings.Contains(err.Error(), "stats over") {
		t.Fatalf("stats/set mismatch: %v", err)
	}
	if _, err := NewPartialFit(&embed.SignatureSet{Matrix: linalg.NewDense(1, 7)}); err == nil {
		t.Fatal("empty partial fit accepted")
	}
}

// TestModelStateApplyAndPersist drives a ModelState through a schema
// evolution and a save/load cycle: the reloaded state must be bit-identical
// — same rows, same accumulator bits — and its trained model must equal the
// from-scratch model (rows path, n < d).
func TestModelStateApplyAndPersist(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d := 9
	base := incRandSet(rng, "S", 7, d, 0.4)
	st, err := NewModelState(base)
	if err != nil {
		t.Fatal(err)
	}
	if st.Schema() != "S" || st.Len() != 7 || st.Dim() != d || st.Version() != 1 {
		t.Fatalf("fresh state: schema=%q len=%d dim=%d version=%d", st.Schema(), st.Len(), st.Dim(), st.Version())
	}

	// No-op apply: same set, no version bump.
	delta, err := st.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() || st.Version() != 1 {
		t.Fatalf("no-op apply produced %v, version %d", delta, st.Version())
	}

	// Evolution: drop rows 1 and 4, change row 2, add two elements.
	evolved := &embed.SignatureSet{}
	for k, id := range base.IDs {
		if k == 1 || k == 4 {
			continue
		}
		evolved.IDs = append(evolved.IDs, id)
	}
	extra := renameElements(incRandSet(rng, "S", 2, d, 0.4), "_new")
	evolved.IDs = append(evolved.IDs, extra.IDs...)
	evolved.Matrix = linalg.NewDense(len(evolved.IDs), d)
	row := 0
	for k := range base.IDs {
		if k == 1 || k == 4 {
			continue
		}
		copy(evolved.Matrix.RowView(row), base.Matrix.RowView(k))
		row++
	}
	evolved.Matrix.Set(1, 0, 42.5) // base row 2 survived as state row 1 — changed in place
	copy(evolved.Matrix.RowView(row), extra.Matrix.RowView(0))
	copy(evolved.Matrix.RowView(row+1), extra.Matrix.RowView(1))

	delta, err = st.Apply(evolved)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Added != 2 || delta.Removed != 2 || delta.Changed != 1 {
		t.Fatalf("delta %v, want +2 -2 ~1", delta)
	}
	if st.Version() != 2 {
		t.Fatalf("version after apply: %d", st.Version())
	}
	if delta.String() != "+2 -2 ~1" {
		t.Fatalf("delta string %q", delta)
	}

	// Rows path: the trained model is bit-identical to from-scratch Train.
	m, err := st.Model(0.9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Train(evolved, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := m.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := want.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if mf != wf {
		t.Fatalf("incremental model fingerprint %s differs from from-scratch %s", mf, wf)
	}

	// Persist and reload: bit-identical resume.
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(store); err != nil {
		t.Fatal(err)
	}
	re, ok, err := LoadModelState(store, "S")
	if err != nil || !ok {
		t.Fatalf("reload: ok=%v err=%v", ok, err)
	}
	if re.Version() != st.Version() || !reflect.DeepEqual(re.IDs(), st.IDs()) {
		t.Fatal("reloaded state differs in version or membership")
	}
	for k := 0; k < st.Len(); k++ {
		a, b := st.rows.RowView(k), re.rows.RowView(k)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("reloaded row %d differs at %d", k, j)
			}
		}
	}
	if re.stats.N != st.stats.N {
		t.Fatalf("reloaded stats N=%d, want %d", re.stats.N, st.stats.N)
	}
	for j := range st.stats.Sum {
		if re.stats.Sum[j] != st.stats.Sum[j] {
			t.Fatalf("reloaded stats sum differs at %d", j)
		}
	}
	for j := 0; j < d; j++ {
		a, b := st.stats.Scatter.RowView(j), re.stats.Scatter.RowView(j)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("reloaded scatter differs at (%d,%d)", j, k)
			}
		}
	}
	// Both states apply the same further evolution identically.
	next := renameElements(incRandSet(rng, "S", 3, d, 0.4), "_v3")
	joined := appendSet(evolved, next)
	joined.Matrix.Set(1, 0, 42.5)
	if _, err := st.Apply(joined); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Apply(joined); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d; j++ {
		a, b := st.stats.Scatter.RowView(j), re.stats.Scatter.RowView(j)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("post-resume evolution diverged at scatter (%d,%d)", j, k)
			}
		}
	}

	// Missing schema is a clean miss.
	if _, ok, err := LoadModelState(store, "ABSENT"); ok || err != nil {
		t.Fatalf("absent state: ok=%v err=%v", ok, err)
	}
}

// TestModelStateErrors covers Apply/MergePartialFit validation.
func TestModelStateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	st, err := NewModelState(incRandSet(rng, "S", 5, 6, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(incRandSet(rng, "OTHER", 3, 6, 0)); err == nil || !strings.Contains(err.Error(), "OTHER") {
		t.Fatalf("cross-schema apply: %v", err)
	}
	if _, err := st.Apply(incRandSet(rng, "S", 3, 7, 0)); err == nil || !strings.Contains(err.Error(), "dimensional") {
		t.Fatalf("dimension change: %v", err)
	}
	if _, err := st.Apply(&embed.SignatureSet{Matrix: linalg.NewDense(1, 6)}); err == nil {
		t.Fatal("empty apply accepted")
	}
	dupIDs := incRandSet(rng, "S", 2, 6, 0)
	dupIDs.IDs[1] = dupIDs.IDs[0]
	if _, err := st.Apply(dupIDs); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate apply: %v", err)
	}
	if _, err := NewModelState(dupIDs); err == nil {
		t.Fatal("duplicate init accepted")
	}
	if _, err := st.Model(0); err == nil {
		t.Fatal("v=0 accepted")
	}
	p, err := NewPartialFit(renameElements(incRandSet(rng, "S", 2, 6, 0.2), "_p"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.MergePartialFit(p); err != nil {
		t.Fatal(err)
	}
	if err := st.MergePartialFit(p); err == nil || !strings.Contains(err.Error(), "already part") {
		t.Fatalf("re-merging the same shard: %v", err)
	}
	other, _ := NewPartialFit(incRandSet(rng, "OTHER", 2, 6, 0))
	if err := st.MergePartialFit(other); err == nil {
		t.Fatal("cross-schema merge accepted")
	}
}

// TestCorruptStateCellQuarantined pins the crash-safety posture of
// persisted sufficient statistics: a corrupted cell is a miss (the caller
// re-initialises from a full fit), and the damaged file is quarantined for
// forensics rather than trusted or deleted.
func TestCorruptStateCellQuarantined(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewModelState(incRandSet(rng, "S", 6, 5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(store); err != nil {
		t.Fatal(err)
	}
	cells, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(cells) != 1 {
		t.Fatalf("want exactly one cell file, got %v (%v)", cells, err)
	}
	b, err := os.ReadFile(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the SHA-256 trailer no longer matches.
	mangled := []byte(strings.Replace(string(b), `"stats_n":6`, `"stats_n":9`, 1))
	if string(mangled) == string(b) {
		t.Fatal("corruption did not change the cell")
	}
	if err := os.WriteFile(cells[0], mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	re, ok, err := LoadModelState(store, "S")
	if err != nil || ok || re != nil {
		t.Fatalf("corrupt cell: state=%v ok=%v err=%v, want clean miss", re, ok, err)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(quarantined) != 1 {
		t.Fatalf("corrupt cell was not quarantined: %v", quarantined)
	}
	// Recovery: re-save and reload.
	if err := st.Save(store); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := LoadModelState(store, "S"); err != nil || !ok {
		t.Fatalf("re-saved state did not load: ok=%v err=%v", ok, err)
	}
}

// TestAssessDeltaStore pins the cross-invocation delta path used by
// `collabscope assess -delta`: verdicts always equal plain AssessContext,
// columns persist across calls, and only models that actually changed are
// re-scored.
func TestAssessDeltaStore(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	d := 8
	local := incRandSet(rng, "L", 9, d, 0.4)
	f1, err := Train(incRandSet(rng, "F1", 7, d, 0.1), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Train(incRandSet(rng, "F2", 8, d, 0.7), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := AssessConfig{}
	ctx := context.Background()
	want, err := AssessContext(ctx, 0, local, []*Model{f1, f2}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	got, rep, err := AssessDeltaStore(ctx, 0, local, []*Model{f1, f2}, cfg, store, "t")
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, got, want, "cold store round")
	if rep.Rescored != 2*local.Len() || rep.Reused != 0 {
		t.Fatalf("cold store round report %+v", rep)
	}

	got, rep, err = AssessDeltaStore(ctx, 0, local, []*Model{f1, f2}, cfg, store, "t")
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, got, want, "warm store round")
	if rep.Rescored != 0 || rep.Reused != 2*local.Len() {
		t.Fatalf("warm store round report %+v", rep)
	}

	// One peer republishes: only its column re-scores.
	f2b, err := Train(incRandSet(rng, "F2", 10, d, 0.7), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want, err = AssessContext(ctx, 0, local, []*Model{f1, f2b}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err = AssessDeltaStore(ctx, 0, local, []*Model{f1, f2b}, cfg, store, "t")
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, got, want, "republish store round")
	if rep.Rescored != local.Len() || rep.Reused != local.Len() {
		t.Fatalf("republish round report %+v, want one column re-scored", rep)
	}

	// Local signatures change: everything re-scores.
	local2 := renameElements(local, "_v2")
	local2.Matrix = local.Matrix.Clone()
	local2.Matrix.Set(0, 0, 3.25)
	want2, err := AssessContext(ctx, 0, local2, []*Model{f1, f2b}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err = AssessDeltaStore(ctx, 0, local2, []*Model{f1, f2b}, cfg, store, "t")
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, got, want2, "local-change store round")
	if rep.Reused != 0 {
		t.Fatalf("changed local signatures must not reuse columns: %+v", rep)
	}

	// Nil store degrades to plain AssessContext.
	got, rep, err = AssessDeltaStore(ctx, 0, local, []*Model{f1, f2b}, cfg, nil, "t")
	if err != nil {
		t.Fatal(err)
	}
	sameVerdicts(t, got, want, "nil-store round")
	if rep.Reused != 0 || rep.Rescored != 2*local.Len() {
		t.Fatalf("nil-store round report %+v", rep)
	}
	if _, _, err := AssessDeltaStore(ctx, 0, &embed.SignatureSet{Matrix: linalg.NewDense(1, d)}, []*Model{f1}, cfg, store, "t"); err == nil {
		t.Fatal("empty local set accepted")
	}
}
