// Package token splits relational identifiers into normalised word tokens
// and maps them to semantic concepts via a curated synonym lexicon.
//
// Schema metadata names arrive in many conventions — SNAKE_CASE, camelCase,
// PascalCase, with digits and abbreviations. The tokenizer normalises them
// all to lower-case word sequences so the signature encoder (and any string
// matcher) sees CLIENT_NAME, clientName and ClientName identically.
package token

import (
	"sort"
	"strings"
	"unicode"
)

// Split breaks an identifier into lower-case tokens. It splits on
// non-alphanumeric separators and on case transitions (fooBar → foo, bar;
// HTTPServer → http, server) and separates digit runs (addr2 → addr, 2).
func Split(ident string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(ident)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r):
			if cur.Len() > 0 {
				prev := runes[i-1]
				switch {
				case unicode.IsDigit(prev):
					flush()
				case unicode.IsLower(prev) && unicode.IsUpper(r):
					// camelCase boundary.
					flush()
				case unicode.IsUpper(prev) && unicode.IsUpper(r) &&
					i+1 < len(runes) && unicode.IsLower(runes[i+1]):
					// End of an acronym run: HTTPServer → HTTP | Server.
					flush()
				}
			}
			cur.WriteRune(r)
		case unicode.IsDigit(r):
			if cur.Len() > 0 && !unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Expand rewrites common relational abbreviations to their full words and
// returns the expanded token list. Unknown tokens pass through unchanged.
func Expand(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if exp, ok := abbreviations[t]; ok {
			out = append(out, exp...)
			continue
		}
		out = append(out, t)
	}
	return out
}

// Normalize is the full pipeline: Split then Expand.
func Normalize(ident string) []string {
	return Expand(Split(ident))
}

// abbreviations maps frequent relational shorthand to full words.
var abbreviations = map[string][]string{
	"no":    {"number"},
	"num":   {"number"},
	"nr":    {"number"},
	"qty":   {"quantity"},
	"amt":   {"amount"},
	"addr":  {"address"},
	"tel":   {"telephone"},
	"dob":   {"date", "of", "birth"},
	"desc":  {"description"},
	"descr": {"description"},
	"dt":    {"date"},
	"cust":  {"customer"},
	"prod":  {"product"},
	"ord":   {"order"},
	"emp":   {"employee"},
	"dept":  {"department"},
	"msrp":  {"manufacturer", "suggested", "retail", "price"},
	"pos":   {"position"},
	"lat":   {"latitude"},
	"lon":   {"longitude"},
	"lng":   {"longitude"},
	"img":   {"image"},
	"id":    {"identifier"},
	"uid":   {"identifier"},
	"fname": {"first", "name"},
	"lname": {"last", "name"},
	"mime":  {"mime"},
}

// Concept returns the canonical concept for a token: its synonym-group head
// if the token belongs to a curated group, otherwise the token itself.
//
// The lexicon models the semantic bridging a pre-trained sentence encoder
// provides between business vocabulary across database vendors (CLIENT ≈
// CUSTOMER, SHIPMENT ≈ DELIVERY, …). It deliberately does NOT bridge
// vocabularies across unrelated domains (driver, circuit, constructor, …),
// mirroring how Sentence-BERT keeps Formula-One terminology away from
// order-customer terminology.
func Concept(tok string) string {
	if c, ok := synonyms[tok]; ok {
		return c
	}
	return tok
}

// Concepts maps every token to its concept.
func Concepts(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = Concept(t)
	}
	return out
}

// Enrichment lexicon (DESIGN.md §16). The maps below extend the base
// abbreviation/synonym tables for the OPT-IN enrichment stage
// (internal/enrich) only: the base encoder keeps consulting
// `abbreviations` and `synonyms` unchanged, so every signature, golden
// matcher output, and claim-level pin built on the base lexicon stays
// bit-identical unless a caller explicitly enables enrichers.

// enrichmentAbbreviations extends `abbreviations` with shorthand common in
// production schemas but absent from the paper's datasets.
var enrichmentAbbreviations = map[string][]string{
	"acct": {"account"},
	"avg":  {"average"},
	"bal":  {"balance"},
	"cat":  {"category"},
	"curr": {"currency"},
	"dst":  {"destination"},
	"grp":  {"group"},
	"inv":  {"invoice"},
	"max":  {"maximum"},
	"mgr":  {"manager"},
	"min":  {"minimum"},
	"org":  {"organisation"},
	"pct":  {"percent"},
	"pmt":  {"payment"},
	"pwd":  {"password"},
	"ref":  {"reference"},
	"seq":  {"sequence"},
	"sku":  {"stock", "keeping", "unit"},
	"src":  {"source"},
	"ssn":  {"social", "security", "number"},
	"upc":  {"universal", "product", "code"},
	"usr":  {"user"},
	"vat":  {"value", "added", "tax"},
}

// synonymGroups is the inverted index of `synonyms`: concept head → sorted
// group members. Built once at init.
var synonymGroups = func() map[string][]string {
	groups := map[string][]string{}
	for tok, head := range synonyms {
		groups[head] = append(groups[head], tok)
	}
	for head := range groups {
		sort.Strings(groups[head])
	}
	return groups
}()

// SynonymGroup returns the sorted members of the token's curated synonym
// group (including the token itself), or nil when the token belongs to no
// group.
func SynonymGroup(tok string) []string {
	head, ok := synonyms[tok]
	if !ok {
		return nil
	}
	return synonymGroups[head]
}

// Enrich returns the deterministic expansion set of a token sequence for
// the enrichment stage: enrichment-lexicon abbreviation expansions plus
// every member of each token's synonym group, in first-derivation order,
// deduplicated, and excluding tokens already present in the input. The
// result is what the lexicon enricher appends to an element's
// serialisation before encoding.
func Enrich(tokens []string) []string {
	seen := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		seen[t] = true
	}
	var out []string
	add := func(t string) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range tokens {
		for _, exp := range enrichmentAbbreviations[t] {
			add(exp)
		}
		for _, member := range SynonymGroup(t) {
			add(member)
		}
	}
	return out
}

// synonyms maps tokens to a canonical concept head. Groups are built from
// common relational business vocabulary.
var synonyms = map[string]string{
	// customer group
	"customer": "customer", "client": "customer", "buyer": "customer",
	"purchaser": "customer", "account": "customer", "contact": "customer",

	// order group
	"order": "order", "purchase": "order", "sale": "order",

	// order line group
	"item": "line", "line": "line", "detail": "line", "position": "line",

	// product group
	"product": "product", "article": "product", "good": "product",
	"goods": "product", "merchandise": "product",

	// shipment group
	"shipment": "shipment", "delivery": "shipment", "shipping": "shipment",
	"dispatch": "shipment", "shipped": "shipment",

	// address / location group
	"address": "address", "street": "address", "location": "address",

	// geography
	"city": "city", "town": "city",
	"state": "region", "region": "region", "province": "region", "territory": "region",
	"country": "country", "nation": "country",
	"postal": "postal", "zip": "postal", "postcode": "postal",

	// person names
	"name": "name", "title": "name", "label": "name",
	"first": "first", "given": "first",
	"last": "last", "sur": "last", "family": "last",

	// communication
	"phone": "phone", "telephone": "phone", "mobile": "phone", "fax": "phone",
	"email": "email", "mail": "email",
	"web": "web", "url": "web", "site": "web", "homepage": "web",

	// money
	"price": "price", "cost": "price", "charge": "price",
	"amount": "amount", "total": "amount", "sum": "amount",
	"payment": "payment", "check": "payment", "invoice": "payment",
	"credit": "credit", "limit": "limit",
	"currency": "currency",

	// quantity and inventory
	"quantity": "quantity", "count": "quantity", "units": "quantity",
	"stock": "inventory", "inventory": "inventory", "warehouse": "inventory",

	// status / lifecycle
	"status": "status", "stage": "status",
	"date": "date", "time": "date", "datetime": "date", "timestamp": "date",
	"day": "date", "created": "created", "updated": "updated",
	"required": "required", "birth": "birth",

	// identifiers
	"identifier": "identifier", "key": "identifier", "code": "identifier",
	"number": "number",

	// organisation
	"employee": "employee", "staff": "employee", "worker": "employee",
	"salesrep": "employee", "rep": "employee", "representative": "employee",
	"office": "office", "branch": "office", "store": "office", "shop": "office",
	"vendor": "vendor", "supplier": "vendor", "manufacturer": "vendor",

	// descriptions
	"description": "description", "comment": "description", "note": "description",
	"notes": "description", "text": "description", "details": "description",
	"remark": "description",

	// images
	"image": "image", "picture": "image", "photo": "image", "logo": "image",
}
