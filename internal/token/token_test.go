package token

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestSplit(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"CUSTOMER_ID", []string{"customer", "id"}},
		{"customerName", []string{"customer", "name"}},
		{"ContactLastName", []string{"contact", "last", "name"}},
		{"HTTPServer", []string{"http", "server"}},
		{"addressLine1", []string{"address", "line", "1"}},
		{"ADDR2", []string{"addr", "2"}},
		{"order-date", []string{"order", "date"}},
		{"order.date", []string{"order", "date"}},
		{"ORDERDATE", []string{"orderdate"}},
		{"", nil},
		{"__", nil},
		{"a", []string{"a"}},
		{"MSRP", []string{"msrp"}},
		{"quantity_in_stock", []string{"quantity", "in", "stock"}},
	}
	for _, c := range cases {
		if got := Split(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Split(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestExpand(t *testing.T) {
	cases := []struct {
		in   []string
		want []string
	}{
		{[]string{"dob"}, []string{"date", "of", "birth"}},
		{[]string{"qty", "ordered"}, []string{"quantity", "ordered"}},
		{[]string{"cust", "no"}, []string{"customer", "number"}},
		{[]string{"unknown"}, []string{"unknown"}},
		{nil, []string{}},
	}
	for _, c := range cases {
		if got := Expand(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Expand(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize("CUST_DOB")
	want := []string{"customer", "date", "of", "birth"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
}

func TestConceptSynonyms(t *testing.T) {
	// The core semantic bridges the paper's running example relies on.
	pairs := [][2]string{
		{"client", "customer"},
		{"buyer", "customer"},
		{"delivery", "shipment"},
		{"zip", "postal"},
		{"street", "address"},
		{"telephone", "phone"},
		{"cost", "price"},
		{"supplier", "vendor"},
	}
	for _, p := range pairs {
		if Concept(p[0]) != Concept(p[1]) {
			t.Errorf("Concept(%q)=%q, Concept(%q)=%q — expected same group",
				p[0], Concept(p[0]), p[1], Concept(p[1]))
		}
	}
}

func TestConceptDoesNotBridgeDomains(t *testing.T) {
	// Formula-One vocabulary must not collapse into order-customer concepts.
	for _, tok := range []string{"driver", "circuit", "constructor", "grid", "podium", "championship"} {
		if c := Concept(tok); c != tok {
			t.Errorf("Concept(%q) = %q, want identity (no cross-domain bridge)", tok, c)
		}
	}
	if Concept("driver") == Concept("customer") {
		t.Fatal("driver must not map to customer")
	}
}

func TestConcepts(t *testing.T) {
	got := Concepts([]string{"client", "name"})
	want := []string{"customer", "name"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Concepts = %v, want %v", got, want)
	}
}

// Property: Split output tokens are lower-case, non-empty, and contain only
// letters or only digits.
func TestSplitInvariantsProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Split(s) {
			if tok == "" {
				return false
			}
			if tok != strings.ToLower(tok) {
				return false
			}
			hasLetter, hasDigit := false, false
			for _, r := range tok {
				if unicode.IsLetter(r) {
					hasLetter = true
				}
				if unicode.IsDigit(r) {
					hasDigit = true
				}
			}
			if hasLetter && hasDigit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Split is idempotent under re-joining with underscores.
func TestSplitStableProperty(t *testing.T) {
	f := func(s string) bool {
		first := Split(s)
		joined := ""
		for i, tok := range first {
			if i > 0 {
				joined += "_"
			}
			joined += tok
		}
		return reflect.DeepEqual(Split(joined), first)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
