package token

import (
	"reflect"
	"testing"
)

func TestEnrichExpandsAbbreviations(t *testing.T) {
	got := Enrich([]string{"acct", "bal"})
	want := map[string]bool{"account": true, "balance": true}
	for _, tok := range got {
		delete(want, tok)
	}
	if len(want) != 0 {
		t.Fatalf("Enrich(acct, bal) = %v, missing %v", got, want)
	}
}

func TestEnrichAddsSynonymGroupMembers(t *testing.T) {
	got := Enrich([]string{"client"})
	found := false
	for _, tok := range got {
		if tok == "customer" {
			found = true
		}
		if tok == "client" {
			t.Fatal("Enrich echoed an input token")
		}
	}
	if !found {
		t.Fatalf("Enrich(client) = %v, want it to include customer", got)
	}
}

func TestEnrichIsDeterministicAndDeduplicated(t *testing.T) {
	in := []string{"acct", "client", "acct"}
	a := Enrich(in)
	b := Enrich(in)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Enrich not deterministic: %v vs %v", a, b)
	}
	seen := map[string]bool{}
	for _, tok := range a {
		if seen[tok] {
			t.Fatalf("Enrich duplicated %q in %v", tok, a)
		}
		seen[tok] = true
	}
}

func TestEnrichUnknownTokens(t *testing.T) {
	if got := Enrich([]string{"zzyzx", "qwerty"}); len(got) != 0 {
		t.Fatalf("Enrich of unknown tokens = %v, want empty", got)
	}
}

func TestSynonymGroup(t *testing.T) {
	group := SynonymGroup("client")
	if len(group) == 0 {
		t.Fatal("client should belong to a synonym group")
	}
	hasCustomer := false
	for _, m := range group {
		if m == "customer" {
			hasCustomer = true
		}
	}
	if !hasCustomer {
		t.Fatalf("SynonymGroup(client) = %v, want it to include customer", group)
	}
	if SynonymGroup("zzyzx") != nil {
		t.Fatal("unknown token should have no group")
	}
}

// TestBaseLexiconUntouched pins the isolation guarantee: the enrichment
// lexicon must not leak into the base normalisation path, or every golden
// signature in the repo would shift.
func TestBaseLexiconUntouched(t *testing.T) {
	for _, tok := range Normalize("ACCT_BAL") {
		if tok == "account" || tok == "balance" {
			t.Fatalf("base Normalize expanded enrichment-only abbreviation: %v", Normalize("ACCT_BAL"))
		}
	}
}
