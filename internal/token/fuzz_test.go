package token

import (
	"strings"
	"testing"
)

// FuzzNormalize asserts the tokenizer pipeline never panics and keeps its
// output invariants on arbitrary input.
func FuzzNormalize(f *testing.F) {
	for _, s := range []string{
		"", "CUSTOMER_ID", "camelCaseName", "HTTPServer2", "ADDR2",
		"日本語", "a__b--c..d", "X", "ALL_CAPS_99",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, ident string) {
		for _, tok := range Normalize(ident) {
			if tok == "" {
				t.Fatalf("empty token from %q", ident)
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("non-lowercase token %q from %q", tok, ident)
			}
			if Concept(tok) == "" {
				t.Fatalf("empty concept for token %q", tok)
			}
		}
	})
}
