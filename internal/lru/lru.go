// Package lru provides a small size-capped least-recently-used map, the
// bounding primitive behind the long-lived caches of this repo: the
// exchange client's per-URL ETag/model cache and the encoder backends'
// content-addressed signature cache. Both previously risked unbounded
// growth in a long-running service; an LRU cap turns "grows forever" into
// "evicts the coldest entry", and callers surface evictions as a counter.
//
// The cache is not safe for concurrent use; callers hold their own lock
// (both call sites already serialise cache access behind a mutex).
package lru

// node is one entry in the intrusive recency list. head side is the most
// recently used end.
type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next *node[K, V]
}

// Cache is a size-capped LRU map. Get promotes; Put inserts or updates and
// reports the evicted key when the cap forces one out.
type Cache[K comparable, V any] struct {
	capacity   int
	index      map[K]*node[K, V]
	head, tail *node[K, V] // head = most recent, tail = least recent
}

// New returns an empty cache holding at most capacity entries. A
// non-positive capacity is normalised to 1 — a cache that cannot hold
// anything would make every Put report a phantom eviction.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &Cache[K, V]{capacity: capacity, index: make(map[K]*node[K, V])}
}

// Len returns the number of entries.
func (c *Cache[K, V]) Len() int { return len(c.index) }

// Cap returns the capacity.
func (c *Cache[K, V]) Cap() int { return c.capacity }

// Get returns the value under k and promotes the entry to most recent.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	n, ok := c.index[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(n)
	return n.val, true
}

// Put stores v under k as the most recent entry. When the insert pushes
// the cache over capacity the least recently used entry is dropped and its
// key returned with evicted=true; updates of an existing key never evict.
func (c *Cache[K, V]) Put(k K, v V) (evictedKey K, evicted bool) {
	if n, ok := c.index[k]; ok {
		n.val = v
		c.moveToFront(n)
		var zero K
		return zero, false
	}
	n := &node[K, V]{key: k, val: v}
	c.index[k] = n
	c.pushFront(n)
	if len(c.index) <= c.capacity {
		var zero K
		return zero, false
	}
	lru := c.tail
	c.unlink(lru)
	delete(c.index, lru.key)
	return lru.key, true
}

func (c *Cache[K, V]) pushFront(n *node[K, V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache[K, V]) moveToFront(n *node[K, V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
