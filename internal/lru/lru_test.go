package lru

import "testing"

func TestPutEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[string, int](2)
	if _, ev := c.Put("a", 1); ev {
		t.Fatal("unexpected eviction on first insert")
	}
	if _, ev := c.Put("b", 2); ev {
		t.Fatal("unexpected eviction under capacity")
	}
	key, ev := c.Put("c", 3)
	if !ev || key != "a" {
		t.Fatalf("Put(c) evicted (%q, %v), want (a, true)", key, ev)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted key still present")
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) = (%d, %v), want (3, true)", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestGetPromotes(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("Get(a) missed")
	}
	// "b" is now least recent and must be the one to go.
	if key, ev := c.Put("c", 3); !ev || key != "b" {
		t.Fatalf("Put(c) evicted (%q, %v), want (b, true)", key, ev)
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("promoted key was evicted")
	}
}

func TestPutUpdatesWithoutEviction(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ev := c.Put("a", 10); ev {
		t.Fatal("update of existing key must not evict")
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("Get(a) = %d after update, want 10", v)
	}
	// The update also promoted "a": inserting now evicts "b".
	if key, ev := c.Put("c", 3); !ev || key != "b" {
		t.Fatalf("Put(c) evicted (%q, %v), want (b, true)", key, ev)
	}
}

func TestNonPositiveCapacity(t *testing.T) {
	c := New[int, int](0)
	if c.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", c.Cap())
	}
	c.Put(1, 1)
	if key, ev := c.Put(2, 2); !ev || key != 1 {
		t.Fatalf("Put(2) evicted (%d, %v), want (1, true)", key, ev)
	}
	if v, ok := c.Get(2); !ok || v != 2 {
		t.Fatalf("Get(2) = (%d, %v), want (2, true)", v, ok)
	}
}

func TestSingleEntryChurn(t *testing.T) {
	c := New[int, string](1)
	for i := 0; i < 10; i++ {
		c.Put(i, "v")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if _, ok := c.Get(9); !ok {
		t.Fatal("most recent entry missing")
	}
}
