package scoping

import (
	"collabscope/internal/metrics"
	"math"
	"testing"
	"testing/quick"

	"collabscope/internal/embed"
	"collabscope/internal/linalg"
	"collabscope/internal/outlier"
	"collabscope/internal/schema"
)

// unionSet builds a small unified signature set: a dense order-customer
// cluster plus a distant racing cluster, with labels marking the dense
// cluster linkable.
func unionSet(t *testing.T) (*embed.SignatureSet, map[schema.ElementID]bool) {
	t.Helper()
	oc := (&schema.Schema{Name: "OC", Tables: []schema.Table{{
		Name: "CUSTOMER",
		Attributes: []schema.Attribute{
			{Name: "CUSTOMER_ID", Type: schema.TypeNumber, Constraint: schema.PrimaryKey},
			{Name: "NAME", Type: schema.TypeText},
			{Name: "ADDRESS", Type: schema.TypeText},
			{Name: "PHONE", Type: schema.TypeText},
			{Name: "EMAIL", Type: schema.TypeText},
		},
	}, {
		Name: "CLIENT",
		Attributes: []schema.Attribute{
			{Name: "CLIENT_ID", Type: schema.TypeNumber, Constraint: schema.PrimaryKey},
			{Name: "CLIENT_NAME", Type: schema.TypeText},
			{Name: "CITY", Type: schema.TypeText},
			{Name: "TELEPHONE", Type: schema.TypeText},
			{Name: "MAIL", Type: schema.TypeText},
		},
	}}}).Normalize()
	racing := (&schema.Schema{Name: "F1", Tables: []schema.Table{{
		Name: "CIRCUITS",
		Attributes: []schema.Attribute{
			{Name: "CIRCUIT_REF", Type: schema.TypeText},
			{Name: "LAP_RECORD", Type: schema.TypeText},
		},
	}}}).Normalize()
	enc := embed.NewHashEncoder(embed.WithDim(96))
	union := embed.Union(embed.EncodeSchemas(enc, []*schema.Schema{oc, racing}))
	labels := map[schema.ElementID]bool{}
	for _, id := range union.IDs {
		labels[id] = id.Schema == "OC"
	}
	return union, labels
}

func TestRankSortsAscending(t *testing.T) {
	union, _ := unionSet(t)
	r := Rank(outlier.ZScore{}, union)
	if r.Len() != union.Len() {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 1; i < r.Len(); i++ {
		if r.Scores[i] < r.Scores[i-1] {
			t.Fatalf("scores not ascending at %d", i)
		}
	}
}

func TestScopeBoundaries(t *testing.T) {
	union, _ := unionSet(t)
	r := Rank(outlier.PCA{Variance: 0.5}, union)
	if got := len(r.Scope(1)); got != r.Len() {
		t.Fatalf("p=1 keeps %d of %d", got, r.Len())
	}
	if got := len(r.Scope(0)); got != 0 {
		t.Fatalf("p=0 keeps %d", got)
	}
	// Out-of-range p clamps.
	if got := len(r.Scope(2)); got != r.Len() {
		t.Fatalf("p=2 keeps %d", got)
	}
	if got := len(r.Scope(-1)); got != 0 {
		t.Fatalf("p=-1 keeps %d", got)
	}
	// Half keeps about half.
	half := len(r.Scope(0.5))
	if half < r.Len()/2-1 || half > r.Len()/2+1 {
		t.Fatalf("p=0.5 keeps %d of %d", half, r.Len())
	}
}

func TestScopeKeepsLowestScores(t *testing.T) {
	union, _ := unionSet(t)
	r := Rank(outlier.PCA{Variance: 0.5}, union)
	keep := r.Scope(0.25)
	n := len(keep)
	for i := 0; i < n; i++ {
		if !keep[r.IDs[i]] {
			t.Fatalf("rank %d (low score) not kept", i)
		}
	}
	for i := n; i < r.Len(); i++ {
		if keep[r.IDs[i]] {
			t.Fatalf("rank %d (high score) wrongly kept", i)
		}
	}
}

func TestLinkableScoresNegation(t *testing.T) {
	union, _ := unionSet(t)
	r := Rank(outlier.ZScore{}, union)
	ls := r.LinkableScores()
	for i := range ls {
		if ls[i] != -r.Scores[i] {
			t.Fatal("LinkableScores must negate outlier scores")
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(g) != 5 {
		t.Fatalf("grid = %v", g)
	}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("grid = %v", g)
		}
	}
	if len(Grid(0)) != 2 {
		t.Fatal("Grid clamps n to ≥ 1")
	}
}

func TestSweepMonotoneRecall(t *testing.T) {
	union, labels := unionSet(t)
	r := Rank(outlier.PCA{Variance: 0.5}, union)
	entries := r.Sweep(labels, Grid(10))
	if len(entries) != 11 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Recall is non-decreasing in p (keeping more can only add TPs) and
	// reaches 1 at p=1.
	prev := -1.0
	for _, e := range entries {
		rec := e.Confusion.Recall()
		if rec < prev-1e-12 {
			t.Fatalf("recall decreased at p=%v", e.Param)
		}
		prev = rec
	}
	if last := entries[len(entries)-1].Confusion.Recall(); last != 1 {
		t.Fatalf("recall at p=1 is %v", last)
	}
}

func TestEvaluateSeparatesDomains(t *testing.T) {
	union, labels := unionSet(t)
	sum := Evaluate(outlier.PCA{Variance: 0.5}, union, labels, Grid(20), 0.001)
	// The racing outliers should be rankable: better than random.
	if sum.AUCROC <= 0.5 {
		t.Fatalf("AUC-ROC = %v, want > 0.5", sum.AUCROC)
	}
	if sum.AUCPR <= 0.6 {
		t.Fatalf("AUC-PR = %v, want > 0.6", sum.AUCPR)
	}
	if sum.AUCF1 <= 0 || sum.AUCF1 > 1 {
		t.Fatalf("AUC-F1 = %v", sum.AUCF1)
	}
	if sum.AUCROCp < 0 || sum.AUCROCp > 1 {
		t.Fatalf("AUC-ROC' = %v", sum.AUCROCp)
	}
}

// Property: for any p ≤ q the keep-set at p is a subset of the keep-set at
// q (scoping is monotone in the threshold).
func TestScopeMonotoneProperty(t *testing.T) {
	union, _ := unionSet(t)
	r := Rank(outlier.ZScore{}, union)
	f := func(a, b float64) bool {
		p, q := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if p > q {
			p, q = q, p
		}
		kp, kq := r.Scope(p), r.Scope(q)
		for id := range kp {
			if !kq[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRankOnUniformData(t *testing.T) {
	// Degenerate input: identical signatures — scores equal, no panic.
	ids := []schema.ElementID{
		schema.TableID("A", "T1"), schema.TableID("B", "T2"),
		schema.TableID("C", "T3"),
	}
	m := linalg.NewDense(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, 1)
		}
	}
	set := &embed.SignatureSet{IDs: ids, Matrix: m}
	r := Rank(outlier.ZScore{}, set)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRankLocalCannotSeeCrossSchemaLinkability(t *testing.T) {
	// The local-only ablation: elements normal WITHIN their own schema get
	// low scores even when they are globally unlinkable. The racing
	// schema's elements are perfectly normal to themselves, so local
	// ranking must NOT concentrate them at the anomalous end the way
	// global ranking does.
	union, labels := unionSet(t)
	// Rebuild the per-schema sets from the union.
	var ocIDs, racingIDs []schema.ElementID
	for _, id := range union.IDs {
		if id.Schema == "OC" {
			ocIDs = append(ocIDs, id)
		} else {
			racingIDs = append(racingIDs, id)
		}
	}
	toSet := func(ids []schema.ElementID) *embed.SignatureSet {
		keep := map[schema.ElementID]bool{}
		for _, id := range ids {
			keep[id] = true
		}
		return union.Select(keep)
	}
	sets := []*embed.SignatureSet{toSet(ocIDs), toSet(racingIDs)}

	local := RankLocal(outlier.PCA{Variance: 0.5}, sets)
	if local.Len() != union.Len() {
		t.Fatalf("local ranking covers %d elements", local.Len())
	}
	// Standardised per-schema scores are finite and merged.
	for _, s := range local.Scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("non-finite local score %v", s)
		}
	}

	// Global scoping separates the racing cluster (above-random AUC);
	// local-only scoring must be clearly worse — the exchange is what
	// detects cross-schema unlinkability.
	global := Rank(outlier.PCA{Variance: 0.5}, union)
	auc := func(r *Ranking) float64 {
		scores := r.LinkableScores()
		aligned := r.LabelsFor(labels)
		return metrics.TrapezoidAUC(metrics.ROCFromScores(scores, aligned))
	}
	if auc(local) >= auc(global) {
		t.Errorf("local-only AUC %.3f should trail global AUC %.3f", auc(local), auc(global))
	}
}
