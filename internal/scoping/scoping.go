// Package scoping implements the global scoping baseline of Section 2.4
// (prior work [44]): rank the unified set of schema-element signatures with
// a single outlier detection algorithm, sort by outlier score, and keep the
// p portion with the lowest scores as the streamlined schemas.
package scoping

import (
	"context"
	"math"
	"sort"

	"collabscope/internal/embed"
	"collabscope/internal/linalg"
	"collabscope/internal/metrics"
	"collabscope/internal/outlier"
	"collabscope/internal/schema"
)

// Ranking couples each element with its outlier score, sorted ascending
// (most linkable first). It is the output of the Ranking + Sorting phases.
type Ranking struct {
	IDs    []schema.ElementID
	Scores []float64
}

// Rank scores the unified signature set with the detector and sorts
// ascending by outlier score.
func Rank(det outlier.Detector, union *embed.SignatureSet) *Ranking {
	r, _ := RankContext(context.Background(), 0, det, union)
	return r
}

// RankContext is Rank with cancellation and an explicit worker count.
// Detectors implementing outlier.ContextDetector score on the worker pool
// and honour cancellation mid-scan; plain detectors run sequentially after
// a context check.
func RankContext(ctx context.Context, workers int, det outlier.Detector, union *embed.SignatureSet) (*Ranking, error) {
	var scores []float64
	if cd, ok := det.(outlier.ContextDetector); ok {
		var err error
		scores, err = cd.ScoresContext(ctx, workers, union.Matrix)
		if err != nil {
			return nil, err
		}
	} else {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		scores = det.Scores(union.Matrix)
	}
	return rankScores(union, scores), nil
}

func rankScores(union *embed.SignatureSet, scores []float64) *Ranking {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	r := &Ranking{
		IDs:    make([]schema.ElementID, len(idx)),
		Scores: make([]float64, len(idx)),
	}
	for out, in := range idx {
		r.IDs[out] = union.IDs[in]
		r.Scores[out] = scores[in]
	}
	return r
}

// Len returns the number of ranked elements.
func (r *Ranking) Len() int { return len(r.IDs) }

// Scope keeps the p ∈ [0, 1] portion of elements with the lowest outlier
// scores (the Scoping phase): p = 1 keeps everything, p = 0 nothing.
func (r *Ranking) Scope(p float64) map[schema.ElementID]bool {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	n := int(math.Round(p * float64(r.Len())))
	keep := make(map[schema.ElementID]bool, n)
	for i := 0; i < n; i++ {
		keep[r.IDs[i]] = true
	}
	return keep
}

// LinkableScores returns a score per element where HIGHER means MORE
// linkable (the negated outlier score), aligned with r.IDs — the input for
// score-based ROC and PR curves.
func (r *Ranking) LinkableScores() []float64 {
	out := make([]float64, len(r.Scores))
	for i, s := range r.Scores {
		out[i] = -s
	}
	return out
}

// LabelsFor aligns ground-truth linkability labels with the ranking order.
func (r *Ranking) LabelsFor(labels map[schema.ElementID]bool) []bool {
	out := make([]bool, len(r.IDs))
	for i, id := range r.IDs {
		out[i] = labels[id]
	}
	return out
}

// RankLocal is the "local-only" scoping ablation: each schema scores its
// OWN elements with its own detector, and the per-schema scores are
// standardised before merging so the threshold p is comparable across
// schemas. This isolates what collaborative scoping's model EXCHANGE
// contributes: purely local outlier scores cannot see that an element
// normal within its own schema (every Formula One attribute) is unlinkable
// globally, so this baseline is expected to fail on domain heterogeneity.
func RankLocal(det outlier.Detector, sets []*embed.SignatureSet) *Ranking {
	var ids []schema.ElementID
	var scores []float64
	for _, set := range sets {
		local := det.Scores(set.Matrix)
		standardize(local)
		ids = append(ids, set.IDs...)
		scores = append(scores, local...)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	r := &Ranking{
		IDs:    make([]schema.ElementID, len(idx)),
		Scores: make([]float64, len(idx)),
	}
	for out, in := range idx {
		r.IDs[out] = ids[in]
		r.Scores[out] = scores[in]
	}
	return r
}

// standardize shifts and scales v in place to zero mean, unit variance
// (no-op for constant slices).
func standardize(v []float64) {
	mu := linalg.Mean(v)
	sd := linalg.StdDev(v)
	if sd == 0 {
		for i := range v {
			v[i] = 0
		}
		return
	}
	for i := range v {
		v[i] = (v[i] - mu) / sd
	}
}

// Grid returns n+1 evenly spaced parameter values spanning [0, 1].
func Grid(n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = float64(i) / float64(n)
	}
	return out
}

// Sweep evaluates the scoping threshold p over the grid against the
// ground-truth labels, producing one confusion matrix per p.
func (r *Ranking) Sweep(labels map[schema.ElementID]bool, grid []float64) []metrics.SweepEntry {
	entries := make([]metrics.SweepEntry, 0, len(grid))
	for _, p := range grid {
		keep := r.Scope(p)
		var c metrics.Confusion
		for _, id := range r.IDs {
			c.Observe(keep[id], labels[id])
		}
		entries = append(entries, metrics.SweepEntry{Param: p, Confusion: c})
	}
	return entries
}

// Evaluate computes the Table-4 AUC summary of a detector on the unified
// signature set: the F1 integral comes from the p sweep, while ROC and PR
// curves come from the continuous outlier scores (every threshold is
// realisable by some p).
func Evaluate(det outlier.Detector, union *embed.SignatureSet,
	labels map[schema.ElementID]bool, grid []float64, rocLambda float64) metrics.SweepSummary {

	r := Rank(det, union)
	entries := r.Sweep(labels, grid)
	scores := r.LinkableScores()
	aligned := r.LabelsFor(labels)
	roc := metrics.ROCFromScores(scores, aligned)
	pr := metrics.PRFromScores(scores, aligned)
	return metrics.SweepSummary{
		AUCF1:   metrics.SweepAUC(metrics.F1Curve(entries)),
		AUCROC:  metrics.TrapezoidAUC(roc),
		AUCROCp: metrics.SmoothedROCAUC(roc, rocLambda),
		AUCPR:   metrics.TrapezoidAUC(pr),
	}
}
