// Package encoder provides pluggable signature-encoder backends behind the
// batch-first embed.Encoder contract (DESIGN.md §16): the deterministic
// hash encoder as the default and test double, and a remote HTTP backend —
// batched, coalesced, retried, and content-addressed-cached — so a real
// embedding server (Sentence-BERT behind an HTTP front) can slot into the
// pipeline without changing any call site.
package encoder

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
)

// WireVersion is the encode wire-format version. Version bumps are
// explicit: a response from a future server is rejected, never guessed at.
const WireVersion = 1

// maxResponseBody bounds how much of a response is read before parsing;
// a misbehaving server cannot stream unbounded garbage into memory.
const maxResponseBody = 256 << 20

// EncodeRequest is the POST body of one encode round trip. Sum is a
// SHA-256 trailer over the canonical encoding with Sum empty — the same
// end-to-end corruption discipline as the model exchange wire format.
type EncodeRequest struct {
	Version int      `json:"version"`
	Model   string   `json:"model,omitempty"`
	Dim     int      `json:"dim"`
	Texts   []string `json:"texts"`
	Sum     string   `json:"sum"`
}

// EncodeResponse carries one signature per request text, in order, under
// the same versioned envelope and SHA-256 trailer as the request.
type EncodeResponse struct {
	Version int         `json:"version"`
	Model   string      `json:"model,omitempty"`
	Dim     int         `json:"dim"`
	Vectors [][]float64 `json:"vectors"`
	Sum     string      `json:"sum"`
}

// checksum returns the hex SHA-256 of v's canonical JSON encoding. Callers
// pass a copy with the Sum field emptied.
func checksum(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// MarshalRequest seals and encodes a request: the trailer is computed over
// the canonical encoding with Sum empty, then stamped in.
func MarshalRequest(r EncodeRequest) ([]byte, error) {
	r.Version = WireVersion
	r.Sum = ""
	sum, err := checksum(r)
	if err != nil {
		return nil, fmt.Errorf("encoder: seal request: %w", err)
	}
	r.Sum = sum
	return json.Marshal(r)
}

// UnmarshalRequest decodes and validates a request: version, checksum
// trailer, and a positive dimension.
func UnmarshalRequest(data []byte) (*EncodeRequest, error) {
	var r EncodeRequest
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("encoder: decode request: %w", err)
	}
	if r.Version != WireVersion {
		return nil, fmt.Errorf("encoder: request wire version %d, this build speaks %d", r.Version, WireVersion)
	}
	if r.Dim <= 0 {
		return nil, fmt.Errorf("encoder: request dimension %d is not positive", r.Dim)
	}
	want := r.Sum
	if want == "" {
		return nil, fmt.Errorf("encoder: request lacks its checksum trailer")
	}
	r.Sum = ""
	got, err := checksum(r)
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("encoder: request checksum mismatch (got %.12s…, want %.12s…)", got, want)
	}
	r.Sum = want
	return &r, nil
}

// MarshalResponse seals and encodes a response.
func MarshalResponse(r EncodeResponse) ([]byte, error) {
	r.Version = WireVersion
	r.Sum = ""
	sum, err := checksum(r)
	if err != nil {
		return nil, fmt.Errorf("encoder: seal response: %w", err)
	}
	r.Sum = sum
	return json.Marshal(r)
}

// UnmarshalResponse decodes and validates a response against the request
// it answers: wire version, checksum trailer, the declared dimension
// (wantDim, 0 skips), one vector per requested text (wantTexts, negative
// skips), every vector exactly Dim long, and every entry finite — a NaN
// from a remote backend must fail here with the offending index, not
// deep inside a model fit. This is the decoder FuzzEncoderResponseJSON
// hammers: any input may error, none may panic.
func UnmarshalResponse(data []byte, wantDim, wantTexts int) (*EncodeResponse, error) {
	var r EncodeResponse
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("encoder: decode response: %w", err)
	}
	if r.Version != WireVersion {
		return nil, fmt.Errorf("encoder: response wire version %d, this build speaks %d", r.Version, WireVersion)
	}
	if r.Dim <= 0 {
		return nil, fmt.Errorf("encoder: response dimension %d is not positive", r.Dim)
	}
	want := r.Sum
	if want == "" {
		return nil, fmt.Errorf("encoder: response lacks its checksum trailer")
	}
	r.Sum = ""
	got, err := checksum(r)
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("encoder: response checksum mismatch (got %.12s…, want %.12s…)", got, want)
	}
	r.Sum = want
	if wantDim > 0 && r.Dim != wantDim {
		return nil, fmt.Errorf("encoder: response dimension %d, requested %d", r.Dim, wantDim)
	}
	if wantTexts >= 0 && len(r.Vectors) != wantTexts {
		return nil, fmt.Errorf("encoder: response carries %d vectors for %d texts", len(r.Vectors), wantTexts)
	}
	for i, v := range r.Vectors {
		if len(v) != r.Dim {
			return nil, fmt.Errorf("encoder: response vector %d has %d dimensions, envelope declares %d", i, len(v), r.Dim)
		}
		for j, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("encoder: response vector %d is non-finite at dimension %d", i, j)
			}
		}
	}
	return &r, nil
}
