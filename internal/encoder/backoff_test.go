package encoder

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"collabscope/internal/exchange"
)

func backoffRemote(t *testing.T, opts ...RemoteOption) *Remote {
	t.Helper()
	r, err := NewRemote("http://example.invalid", append([]RemoteOption{
		WithDim(8),
		WithRetryPolicy(exchange.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    2 * time.Second,
			Timeout:     time.Second,
		}),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestBackoffSchedule pins the jittered-doubling schedule: each delay is
// within [base·2^(k−1)/2, base·2^(k−1)] capped at MaxDelay, and a seeded
// jitter source makes the whole schedule reproducible.
func TestBackoffSchedule(t *testing.T) {
	r := backoffRemote(t, WithJitterRand(rand.New(rand.NewPCG(1, 2))))
	prevCap := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := r.backoff(attempt, errors.New("boom"))
		want := 100 * time.Millisecond << (attempt - 1)
		if want > 2*time.Second {
			want = 2 * time.Second
		}
		if d < want/2 || d > want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
		}
		if want == 2*time.Second && prevCap != 0 && d < want/2 {
			t.Fatalf("capped delay fell below half the cap: %v", d)
		}
		prevCap = want
	}

	// Same seed, same schedule.
	a := backoffRemote(t, WithJitterRand(rand.New(rand.NewPCG(7, 7))))
	b := backoffRemote(t, WithJitterRand(rand.New(rand.NewPCG(7, 7))))
	for attempt := 1; attempt <= 5; attempt++ {
		if da, db := a.backoff(attempt, nil), b.backoff(attempt, nil); da != db {
			t.Fatalf("seeded schedules diverged at attempt %d: %v vs %v", attempt, da, db)
		}
	}
}

// TestBackoffHonoursRetryAfter pins the Retry-After floor: server advice
// lifts a small jittered delay, and is itself capped at MaxDelay.
func TestBackoffHonoursRetryAfter(t *testing.T) {
	r := backoffRemote(t, WithJitterRand(rand.New(rand.NewPCG(1, 1))))
	err := &encodeStatusError{code: 429, retryAfter: time.Second}
	if d := r.backoff(1, err); d < time.Second {
		t.Fatalf("Retry-After floor ignored: %v < 1s", d)
	}
	// Advice beyond MaxDelay is capped.
	err = &encodeStatusError{code: 429, retryAfter: time.Minute}
	if d := r.backoff(1, err); d != 2*time.Second {
		t.Fatalf("Retry-After cap: %v, want MaxDelay 2s", d)
	}
}

func TestParseRetryAfterSeconds(t *testing.T) {
	cases := map[string]time.Duration{
		"":                         0,
		"  ":                       0,
		"3":                        3 * time.Second,
		" 10 ":                     10 * time.Second,
		"-1":                       0,
		"nope":                     0,
		"Wed, 21 Oct 2015 07:28 G": 0,
	}
	for in, want := range cases {
		if got := parseRetryAfterSeconds(in); got != want {
			t.Fatalf("parseRetryAfterSeconds(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestRetryableEncodeClassification(t *testing.T) {
	if retryableEncode(&encodeStatusError{code: 400}) {
		t.Fatal("400 must not retry")
	}
	if !retryableEncode(&encodeStatusError{code: 503}) || !retryableEncode(&encodeStatusError{code: 429}) {
		t.Fatal("503/429 must retry")
	}
	if !retryableEncode(context.DeadlineExceeded) {
		t.Fatal("deadline must retry")
	}
	if retryableEncode(errors.New("parse failure")) {
		t.Fatal("plain errors must not retry")
	}
}

// TestEncodeStatusErrorMessage pins both Error() forms (with and without
// a body excerpt).
func TestEncodeStatusErrorMessage(t *testing.T) {
	if got := (&encodeStatusError{code: 500}).Error(); got != "http status 500" {
		t.Fatalf("bare form: %q", got)
	}
	if got := (&encodeStatusError{code: 500, body: " boom \n"}).Error(); got != "http status 500: boom" {
		t.Fatalf("body form: %q", got)
	}
}
