package encoder

import (
	"testing"
)

// FuzzEncoderResponseJSON hammers the response decoder with arbitrary
// bytes and shape hints: any input may be rejected, none may panic, and
// anything accepted must honour the declared envelope (version, checksum,
// dimensions, finite entries). Wired into `make fuzz-smoke`.
func FuzzEncoderResponseJSON(f *testing.F) {
	good, err := MarshalResponse(EncodeResponse{Dim: 2, Vectors: [][]float64{{0.5, -1.25}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good, 2, 1)
	f.Add([]byte(`{}`), 0, -1)
	f.Add([]byte(`{"version":1,"dim":2,"vectors":[[1,2]],"sum":"beef"}`), 2, 1)
	f.Add([]byte(`{"version":1,"dim":2,"vectors":[[1e999,2]],"sum":""}`), 2, 1)
	f.Add([]byte(`not json at all`), 8, 4)
	f.Fuzz(func(t *testing.T, data []byte, wantDim, wantTexts int) {
		resp, err := UnmarshalResponse(data, wantDim, wantTexts)
		if err != nil {
			return
		}
		if resp.Version != WireVersion {
			t.Fatalf("accepted version %d", resp.Version)
		}
		if resp.Dim <= 0 {
			t.Fatalf("accepted dim %d", resp.Dim)
		}
		if wantDim > 0 && resp.Dim != wantDim {
			t.Fatalf("accepted dim %d against want %d", resp.Dim, wantDim)
		}
		if wantTexts >= 0 && len(resp.Vectors) != wantTexts {
			t.Fatalf("accepted %d vectors against want %d", len(resp.Vectors), wantTexts)
		}
		for _, v := range resp.Vectors {
			if len(v) != resp.Dim {
				t.Fatalf("accepted ragged vector of %d dims", len(v))
			}
		}
	})
}
