package encoder

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"collabscope/internal/embed"
)

// TestStubRejectsMalformedRequests pins the stub's ingress discipline:
// wrong method, oversized/garbage bodies, tampered checksums, and
// version skew are all refused before they touch the encoder, and none
// of them count as served requests.
func TestStubRejectsMalformedRequests(t *testing.T) {
	stub := NewStubServer(embed.NewHashEncoder(embed.WithDim(8)))

	get := httptest.NewRecorder()
	stub.ServeHTTP(get, httptest.NewRequest(http.MethodGet, "/", nil))
	if get.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", get.Code)
	}

	garbage := httptest.NewRecorder()
	stub.ServeHTTP(garbage, httptest.NewRequest(http.MethodPost, "/", strings.NewReader("{not json")))
	if garbage.Code != http.StatusBadRequest {
		t.Fatalf("garbage status = %d, want 400", garbage.Code)
	}

	oversized := httptest.NewRecorder()
	stub.ServeHTTP(oversized, httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(make([]byte, maxResponseBody+2))))
	if oversized.Code != http.StatusBadRequest {
		t.Fatalf("oversized status = %d, want 400", oversized.Code)
	}

	sealed, err := MarshalRequest(EncodeRequest{Dim: 8, Texts: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(sealed, []byte(`"a"`), []byte(`"b"`), 1)
	bad := httptest.NewRecorder()
	stub.ServeHTTP(bad, httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(tampered)))
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("tampered status = %d, want 400", bad.Code)
	}

	if stub.Requests() != 0 || stub.Texts() != 0 {
		t.Fatalf("rejected requests were counted: %d/%d", stub.Requests(), stub.Texts())
	}

	ok := httptest.NewRecorder()
	stub.ServeHTTP(ok, httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(sealed)))
	if ok.Code != http.StatusOK {
		t.Fatalf("sealed request status = %d: %s", ok.Code, ok.Body)
	}
	if stub.Requests() != 1 || stub.Texts() != 1 {
		t.Fatalf("served counters = %d/%d, want 1/1", stub.Requests(), stub.Texts())
	}
	if _, err := UnmarshalResponse(ok.Body.Bytes(), 8, 1); err != nil {
		t.Fatalf("stub response failed validation: %v", err)
	}
}

// TestRequestWireValidation walks UnmarshalRequest's refusal branches.
func TestRequestWireValidation(t *testing.T) {
	if _, err := UnmarshalRequest([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := UnmarshalRequest([]byte(`{"version":99,"dim":8,"sum":"x"}`)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew: %v", err)
	}
	if _, err := UnmarshalRequest([]byte(`{"version":1,"dim":0,"sum":"x"}`)); err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("zero dim: %v", err)
	}
	if _, err := UnmarshalRequest([]byte(`{"version":1,"dim":8}`)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("missing trailer: %v", err)
	}
}

// TestNewSpecErrors walks the registry's refusal branches.
func TestNewSpecErrors(t *testing.T) {
	if _, err := New("hash:extra", Config{}); err == nil || !strings.Contains(err.Error(), "no parameter") {
		t.Fatalf("hash with param: %v", err)
	}
	if _, err := New("remote:", Config{}); err == nil || !strings.Contains(err.Error(), "URL") {
		t.Fatalf("remote without URL: %v", err)
	}
	if _, err := New("remote: ", Config{}); err == nil {
		t.Fatal("remote with blank URL accepted")
	}
	// Default spec is the hash encoder at the default dimension.
	enc, err := New("", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if enc.Dim() != embed.DefaultDim {
		t.Fatalf("default dim = %d, want %d", enc.Dim(), embed.DefaultDim)
	}
}
