package encoder

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"collabscope/internal/checkpoint"
	"collabscope/internal/datasets"
	"collabscope/internal/embed"
	"collabscope/internal/exchange"
	"collabscope/internal/faultinject"
	"collabscope/internal/obs"
)

const testDim = 32

func newStubPair(t *testing.T, opts ...RemoteOption) (*StubServer, *Remote) {
	t.Helper()
	stub := NewStubServer(embed.NewHashEncoder(embed.WithDim(testDim)))
	srv := httptest.NewServer(stub)
	t.Cleanup(srv.Close)
	remote, err := NewRemote(srv.URL, append([]RemoteOption{WithDim(testDim)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return stub, remote
}

func sameRows(t *testing.T, want, got [][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row counts: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("row %d dims: %d vs %d", i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("row %d dim %d: %v != %v", i, j, want[i][j], got[i][j])
			}
		}
	}
}

// TestRemoteConformsToHash is the backend conformance bar: the remote
// stub and the local hash encoder produce bit-identical SignatureSets
// over a full bundled dataset.
func TestRemoteConformsToHash(t *testing.T) {
	_, remote := newStubPair(t)
	hash := embed.NewHashEncoder(embed.WithDim(testDim))
	for _, s := range datasets.OC3FO().Schemas {
		local, err := embed.EncodeSchemaContext(context.Background(), 0, hash, s)
		if err != nil {
			t.Fatal(err)
		}
		viaHTTP, err := embed.EncodeSchemaContext(context.Background(), 0, remote, s)
		if err != nil {
			t.Fatal(err)
		}
		if local.Len() != viaHTTP.Len() {
			t.Fatalf("%s: %d vs %d elements", s.Name, local.Len(), viaHTTP.Len())
		}
		for i := 0; i < local.Len(); i++ {
			if local.IDs[i] != viaHTTP.IDs[i] {
				t.Fatalf("%s: id %d diverged", s.Name, i)
			}
			a, b := local.Matrix.RowView(i), viaHTTP.Matrix.RowView(i)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s: signature of %s differs at dim %d", s.Name, local.IDs[i], j)
				}
			}
		}
	}
}

func TestRemoteEmptyBatchSkipsNetwork(t *testing.T) {
	stub, remote := newStubPair(t)
	rows, err := remote.EncodeBatch(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty batch returned %d rows", len(rows))
	}
	if stub.Requests() != 0 {
		t.Fatalf("empty batch issued %d requests", stub.Requests())
	}
}

func TestRemoteSingleText(t *testing.T) {
	_, remote := newStubPair(t)
	hash := embed.NewHashEncoder(embed.WithDim(testDim))
	rows, err := remote.EncodeBatch(context.Background(), []string{"CUSTOMERS CUST_ID"})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, [][]float64{hash.Encode("CUSTOMERS CUST_ID")}, rows)
}

// TestRemoteCoalescingWindow pins that a batch larger than the window
// splits into ceil(n/window) requests, with results still in order.
func TestRemoteCoalescingWindow(t *testing.T) {
	stub, remote := newStubPair(t, WithMaxBatch(4))
	hash := embed.NewHashEncoder(embed.WithDim(testDim))
	texts := make([]string, 10)
	want := make([][]float64, len(texts))
	for i := range texts {
		texts[i] = strings.Repeat("x", i+1)
		want[i] = hash.Encode(texts[i])
	}
	rows, err := remote.EncodeBatch(context.Background(), texts)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, want, rows)
	if got := stub.Requests(); got != 3 { // ceil(10/4)
		t.Fatalf("10 texts through window 4 took %d requests, want 3", got)
	}
	if got := stub.Texts(); got != 10 {
		t.Fatalf("server saw %d texts, want 10", got)
	}
}

// TestRemoteDeduplicatesWithinBatch pins that duplicate texts in one
// batch are encoded once but all receive their signature.
func TestRemoteDeduplicatesWithinBatch(t *testing.T) {
	stub, remote := newStubPair(t)
	hash := embed.NewHashEncoder(embed.WithDim(testDim))
	rows, err := remote.EncodeBatch(context.Background(), []string{"dup", "dup", "dup"})
	if err != nil {
		t.Fatal(err)
	}
	want := hash.Encode("dup")
	sameRows(t, [][]float64{want, want, want}, rows)
	if got := stub.Texts(); got != 1 {
		t.Fatalf("server saw %d texts for 3 duplicates, want 1", got)
	}
}

// TestRemoteContextCancellation pins that a caller blocked on a stalled
// server is released promptly by its own context.
func TestRemoteContextCancellation(t *testing.T) {
	release := make(chan struct{})
	var stalled atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stalled.Store(true)
		<-release
		http.Error(w, "too late", http.StatusInternalServerError)
	}))
	t.Cleanup(func() { close(release); srv.Close() })
	remote, err := NewRemote(srv.URL, WithDim(testDim),
		WithRetryPolicy(exchange.RetryPolicy{MaxAttempts: 1, Timeout: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for !stalled.Load() {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, err = remote.EncodeBatch(ctx, []string{"a", "b"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCacheDeterminism pins the content-addressed cache: warm results are
// bit-identical to cold ones, warm re-encodes hit the network zero times,
// and the persisted store serves a fresh backend instance.
func TestCacheDeterminism(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stub, remote := newStubPair(t, WithStore(store))
	texts := []string{"CUSTOMERS", "ORDERS ORDER_DATE", "RACES"}

	cold, err := remote.EncodeBatch(context.Background(), texts)
	if err != nil {
		t.Fatal(err)
	}
	coldReqs := stub.Requests()
	warm, err := remote.EncodeBatch(context.Background(), texts)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, cold, warm)
	if got := stub.Requests(); got != coldReqs {
		t.Fatalf("warm re-encode went to the network (%d -> %d requests)", coldReqs, got)
	}

	// A new instance over the same store — and a dead server — still
	// serves bit-identical signatures from disk.
	deadSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "server gone", http.StatusInternalServerError)
	}))
	t.Cleanup(deadSrv.Close)
	store2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	revived, err := NewRemote(deadSrv.URL, WithDim(testDim), WithStore(store2))
	if err != nil {
		t.Fatal(err)
	}
	fromDisk, err := revived.EncodeBatch(context.Background(), texts)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, cold, fromDisk)
}

func TestCacheKeySeparatesConfigurations(t *testing.T) {
	base := CacheKey("m", 8, "text")
	for name, other := range map[string]string{
		"model": CacheKey("m2", 8, "text"),
		"dim":   CacheKey("m", 16, "text"),
		"text":  CacheKey("m", 8, "text2"),
	} {
		if other == base {
			t.Fatalf("changing %s left the cache key unchanged", name)
		}
	}
	// Boundary-ambiguity guard: model/text must not blend across the
	// delimiter into the same digest.
	if CacheKey("ab", 8, "c") == CacheKey("a", 8, "bc") {
		t.Fatal("model/text boundary is ambiguous in the cache key")
	}
}

// TestRemoteRetriesThenSucceeds pins the retry discipline: 5xx answers
// retry up to MaxAttempts with the retries counter ticking.
func TestRemoteRetriesThenSucceeds(t *testing.T) {
	stub := NewStubServer(embed.NewHashEncoder(embed.WithDim(testDim)))
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		stub.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	reg := obs.NewRegistry()
	remote, err := NewRemote(srv.URL, WithDim(testDim), WithMetrics(reg),
		WithRetryPolicy(exchange.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Timeout: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := remote.EncodeBatch(context.Background(), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	hash := embed.NewHashEncoder(embed.WithDim(testDim))
	sameRows(t, [][]float64{hash.Encode("a")}, rows)
	if got := reg.Counter("encoder.retries").Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

// TestRemoteChecksumGuardsBody pins the fault-injection site: a corrupted
// response body fails checksum validation instead of decoding garbage,
// and 4xx (non-retryable) fails without burning attempts.
func TestRemoteChecksumGuardsBody(t *testing.T) {
	inject := faultinject.New(1,
		faultinject.Fault{Site: "encoder.client.body", Kind: faultinject.KindCorrupt, Rate: 1})
	reg := obs.NewRegistry()
	_, remote := newStubPair(t, WithFaultInjector(inject), WithMetrics(reg),
		WithRetryPolicy(exchange.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Timeout: time.Second}))
	_, err := remote.EncodeBatch(context.Background(), []string{"a"})
	if err == nil {
		t.Fatal("corrupted body decoded successfully")
	}
	if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "decode") {
		t.Fatalf("error does not mention corruption: %v", err)
	}
	if got := reg.Counter("encoder.request_failures").Value(); got != 1 {
		t.Fatalf("request_failures = %d, want 1", got)
	}
}

func TestRemoteDimMismatchFromServer(t *testing.T) {
	// Server speaks dim 16; client requests 32: the stub rejects the
	// request and the client surfaces it without retrying a 400.
	stub := NewStubServer(embed.NewHashEncoder(embed.WithDim(16)))
	srv := httptest.NewServer(stub)
	t.Cleanup(srv.Close)
	remote, err := NewRemote(srv.URL, WithDim(32),
		WithRetryPolicy(exchange.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Timeout: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remote.EncodeBatch(context.Background(), []string{"a"}); err == nil {
		t.Fatal("dimension mismatch encoded successfully")
	}
	if got := stub.Requests(); got != 0 {
		t.Fatalf("stub accepted %d mismatched requests", got)
	}
}

func TestRegistryNew(t *testing.T) {
	enc, err := New("", Config{Dim: 24})
	if err != nil || enc.Dim() != 24 {
		t.Fatalf("default backend: enc=%v err=%v", enc, err)
	}
	if _, err := New("hash:param", Config{}); err == nil {
		t.Fatal("hash with a parameter should fail")
	}
	if _, err := New("remote", Config{}); err == nil {
		t.Fatal("remote without a URL should fail")
	}
	if _, err := New("quantum", Config{}); err == nil || !strings.Contains(err.Error(), "hash, remote") {
		t.Fatalf("unknown backend error should list backends, got %v", err)
	}
	stub := NewStubServer(embed.NewHashEncoder(embed.WithDim(embed.DefaultDim)))
	srv := httptest.NewServer(stub)
	t.Cleanup(srv.Close)
	enc, err = New("remote:"+srv.URL, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if enc.Dim() != embed.DefaultDim {
		t.Fatalf("remote default dim = %d, want %d", enc.Dim(), embed.DefaultDim)
	}
}

func TestWireTamperRejected(t *testing.T) {
	payload, err := MarshalResponse(EncodeResponse{Dim: 2, Vectors: [][]float64{{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalResponse(payload, 2, 1); err != nil {
		t.Fatalf("clean round trip failed: %v", err)
	}
	tampered := strings.Replace(string(payload), "1", "7", 1)
	if tampered == string(payload) {
		t.Fatal("tamper was a no-op")
	}
	if _, err := UnmarshalResponse([]byte(tampered), 2, 1); err == nil {
		t.Fatal("tampered response passed validation")
	}
	// Shape validation against the request.
	if _, err := UnmarshalResponse(payload, 3, 1); err == nil {
		t.Fatal("wrong wantDim passed")
	}
	if _, err := UnmarshalResponse(payload, 2, 2); err == nil {
		t.Fatal("wrong wantTexts passed")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	payload, err := MarshalRequest(EncodeRequest{Model: "m", Dim: 4, Texts: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := UnmarshalRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.Model != "m" || req.Dim != 4 || len(req.Texts) != 2 {
		t.Fatalf("round trip mangled the request: %+v", req)
	}
	if _, err := UnmarshalRequest([]byte(`{"version":1,"dim":4,"texts":[],"sum":""}`)); err == nil {
		t.Fatal("missing trailer passed")
	}
	if _, err := UnmarshalRequest([]byte(`{"version":99,"dim":4}`)); err == nil {
		t.Fatal("future wire version passed")
	}
}
