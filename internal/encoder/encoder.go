package encoder

import (
	"fmt"
	"net/http"
	"strings"

	"collabscope/internal/checkpoint"
	"collabscope/internal/embed"
	"collabscope/internal/exchange"
	"collabscope/internal/obs"
)

// Config carries the pipeline-level knobs a backend constructor may need.
// Zero values mean "use the package default".
type Config struct {
	// Dim is the signature dimensionality (embed.DefaultDim if zero).
	Dim int
	// Model is an identifier sent to remote backends and mixed into cache
	// keys.
	Model string
	// MaxBatch is the remote coalescing window (DefaultMaxBatch if zero).
	MaxBatch int
	// CachePath, when set, persists the remote signature cache via a
	// checkpoint store rooted there.
	CachePath string
	// CacheCapacity bounds the in-memory signature cache
	// (DefaultCacheCapacity if zero).
	CacheCapacity int
	// Retry overrides the remote retry policy (exchange defaults if zero).
	Retry exchange.RetryPolicy
	// HTTPClient overrides the remote transport (http.DefaultClient if nil).
	HTTPClient *http.Client
	// Metrics attaches a metrics registry to the backend (disabled if nil).
	Metrics *obs.Registry
}

// Backends lists the registered backend names, in the order New documents
// them.
func Backends() []string { return []string{"hash", "remote"} }

// New resolves a backend spec of the form "name" or "name:param" — the
// same convention as the detector/matcher registries:
//
//	""              — the default deterministic hash encoder
//	"hash"          — the deterministic hash encoder
//	"remote:<url>"  — the batched HTTP backend posting to <url>
//
// Every backend honours Config.Dim, so swapping backends never changes
// signature shape.
func New(spec string, cfg Config) (embed.Encoder, error) {
	name, param := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, param = spec[:i], spec[i+1:]
	}
	dim := cfg.Dim
	if dim <= 0 {
		dim = embed.DefaultDim
	}
	switch name {
	case "", "hash":
		if param != "" {
			return nil, fmt.Errorf("encoder: hash backend takes no parameter, got %q", param)
		}
		return embed.NewHashEncoder(embed.WithDim(dim)), nil
	case "remote":
		if strings.TrimSpace(param) == "" {
			return nil, fmt.Errorf("encoder: remote backend needs a URL, e.g. %q", "remote:http://127.0.0.1:8093/encode")
		}
		opts := []RemoteOption{
			WithDim(dim),
			WithModel(cfg.Model),
			WithMaxBatch(cfg.MaxBatch),
			WithCacheCapacity(cfg.CacheCapacity),
			WithRetryPolicy(cfg.Retry),
			WithHTTPClient(cfg.HTTPClient),
			WithMetrics(cfg.Metrics),
		}
		if cfg.CachePath != "" {
			store, err := checkpoint.Open(cfg.CachePath)
			if err != nil {
				return nil, fmt.Errorf("encoder: open signature cache: %w", err)
			}
			opts = append(opts, WithStore(store))
		}
		return NewRemote(param, opts...)
	default:
		return nil, fmt.Errorf("encoder: unknown backend %q (have %s)", name, strings.Join(Backends(), ", "))
	}
}
