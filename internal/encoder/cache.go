package encoder

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"collabscope/internal/checkpoint"
	"collabscope/internal/lru"
	"collabscope/internal/obs"
)

// DefaultCacheCapacity bounds the in-memory signature cache (entries).
const DefaultCacheCapacity = 65536

// CacheKey is the content-addressed identity of one signature: the hex
// SHA-256 of (wire version, model, dimension, text). Any change to the
// model identifier or dimensionality changes every key, so a cache can
// never serve signatures from a different encoder configuration.
func CacheKey(model string, dim int, text string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|%s|%d|", WireVersion, model, dim)
	h.Write([]byte(text))
	return hex.EncodeToString(h.Sum(nil))
}

// sigCache is the remote backend's signature cache: a size-capped
// in-memory LRU in front of an optional checkpoint.Store, so cache-warm
// reruns skip the network entirely and — with a store — survive process
// restarts. Signatures are content-addressed (CacheKey), making hits
// bit-identical to a fresh encode by construction.
type sigCache struct {
	mu    sync.Mutex
	mem   *lru.Cache[string, []float64]
	store *checkpoint.Store
	reg   *obs.Registry
}

func newSigCache(capacity int, store *checkpoint.Store, reg *obs.Registry) *sigCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &sigCache{mem: lru.New[string, []float64](capacity), store: store, reg: reg}
}

// get returns a copy of the cached signature (callers own their rows).
// A memory miss falls through to the checkpoint store; a store hit is
// promoted back into memory.
func (c *sigCache) get(key string) ([]float64, bool) {
	c.mu.Lock()
	v, ok := c.mem.Get(key)
	c.mu.Unlock()
	if ok {
		c.reg.Counter("encoder.cache_hits").Inc()
		return append([]float64(nil), v...), true
	}
	if c.store != nil {
		var stored []float64
		if ok, err := c.store.Load("sig/"+key, &stored); err == nil && ok {
			c.putMem(key, stored)
			c.reg.Counter("encoder.cache_hits").Inc()
			c.reg.Counter("encoder.cache_disk_hits").Inc()
			return append([]float64(nil), stored...), true
		}
	}
	c.reg.Counter("encoder.cache_misses").Inc()
	return nil, false
}

// put stores a signature in memory and, when configured, persists it.
// Persistence failures are recorded, not fatal: the cache is an
// optimisation, never a correctness dependency.
func (c *sigCache) put(key string, v []float64) {
	c.putMem(key, append([]float64(nil), v...))
	if c.store != nil {
		if err := c.store.Save("sig/"+key, v); err != nil {
			c.reg.Counter("encoder.cache_persist_failures").Inc()
		}
	}
}

func (c *sigCache) putMem(key string, v []float64) {
	c.mu.Lock()
	_, evicted := c.mem.Put(key, v)
	c.mu.Unlock()
	if evicted {
		c.reg.Counter("encoder.cache_evictions").Inc()
	}
}
