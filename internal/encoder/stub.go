package encoder

import (
	"context"
	"io"
	"net/http"
	"sync/atomic"

	"collabscope/internal/embed"
)

// StubServer is an http.Handler implementing the encode wire format over
// any local encoder — conformance tests and the encodersmoke binary wrap
// the deterministic hash encoder with it, so the remote backend's full
// network path can be exercised hermetically and its output compared
// bit-for-bit against the local path.
type StubServer struct {
	enc      embed.Encoder
	requests atomic.Int64
	texts    atomic.Int64
}

// NewStubServer returns a stub encode server backed by enc.
func NewStubServer(enc embed.Encoder) *StubServer {
	return &StubServer{enc: enc}
}

// Requests returns how many well-formed encode requests the server has
// answered — coalescing tests count round trips with it.
func (s *StubServer) Requests() int64 { return s.requests.Load() }

// Texts returns how many texts those requests carried in total.
func (s *StubServer) Texts() int64 { return s.texts.Load() }

// ServeHTTP implements http.Handler.
func (s *StubServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "encode endpoint accepts POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxResponseBody+1))
	if err != nil || len(body) > maxResponseBody {
		http.Error(w, "unreadable or oversized request body", http.StatusBadRequest)
		return
	}
	req, err := UnmarshalRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Dim != s.enc.Dim() {
		http.Error(w, "requested dimension not served by this model", http.StatusBadRequest)
		return
	}
	s.requests.Add(1)
	s.texts.Add(int64(len(req.Texts)))
	ctx := r.Context()
	if ctx == nil {
		ctx = context.Background()
	}
	vectors, err := s.enc.EncodeBatch(ctx, req.Texts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	payload, err := MarshalResponse(EncodeResponse{Model: req.Model, Dim: s.enc.Dim(), Vectors: vectors})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}
