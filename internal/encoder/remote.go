package encoder

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"collabscope/internal/checkpoint"
	"collabscope/internal/exchange"
	"collabscope/internal/faultinject"
	"collabscope/internal/obs"
)

// DefaultMaxBatch is the coalescing window: the most texts one HTTP
// request carries. Larger batches amortise round trips; the cap keeps a
// single request's body (and the server's per-request work) bounded.
const DefaultMaxBatch = 256

// Remote is the HTTP encoder backend: it speaks the versioned encode wire
// format (SHA-256 trailers both ways) against a server's POST endpoint,
// with the same retry/backoff/deadline discipline as the model-exchange
// client (it reuses exchange.RetryPolicy), request coalescing across
// concurrent callers, and a content-addressed signature cache so repeat
// texts — and with a checkpoint store, repeat runs — never leave the
// process.
//
// Determinism contract: the server must be a pure function of the text
// (the stub server wraps the deterministic hash encoder). Under that
// contract the backend is bit-identical to calling the server per text,
// regardless of batching, coalescing, caching, or retries — pinned by the
// backend conformance test.
type Remote struct {
	url      string
	model    string
	dim      int
	maxBatch int

	hc     *http.Client
	policy exchange.RetryPolicy
	randN  func(n time.Duration) time.Duration
	inject *faultinject.Injector
	reg    *obs.Registry

	cache *sigCache
	// Cache construction inputs, consumed in finish().
	store    *checkpoint.Store
	capacity int

	co coalescer
}

// RemoteOption configures a Remote backend.
type RemoteOption func(*Remote)

// WithDim sets the signature dimensionality the backend requests and
// validates (default embed.DefaultDim via New; 768).
func WithDim(d int) RemoteOption {
	return func(r *Remote) { r.dim = d }
}

// WithModel sets the model identifier sent with every request and mixed
// into every cache key.
func WithModel(model string) RemoteOption {
	return func(r *Remote) { r.model = model }
}

// WithMaxBatch sets the coalescing window (texts per HTTP request;
// default DefaultMaxBatch).
func WithMaxBatch(n int) RemoteOption {
	return func(r *Remote) {
		if n > 0 {
			r.maxBatch = n
		}
	}
}

// WithHTTPClient replaces the transport (http.DefaultClient if unset).
func WithHTTPClient(hc *http.Client) RemoteOption {
	return func(r *Remote) {
		if hc != nil {
			r.hc = hc
		}
	}
}

// WithRetryPolicy replaces the default retry policy (the exchange client
// defaults: 3 attempts, 100 ms base delay, 2 s cap, 5 s attempt timeout).
func WithRetryPolicy(p exchange.RetryPolicy) RemoteOption {
	return func(r *Remote) { r.policy = p }
}

// WithStore persists the signature cache through a checkpoint store, so a
// rerun over the same texts costs zero requests even across restarts.
func WithStore(s *checkpoint.Store) RemoteOption {
	return func(r *Remote) { r.store = s }
}

// WithCacheCapacity bounds the in-memory signature cache (entries;
// default DefaultCacheCapacity). Evictions are counted as
// "encoder.cache_evictions".
func WithCacheCapacity(n int) RemoteOption {
	return func(r *Remote) { r.capacity = n }
}

// WithMetrics attaches a metrics registry: request latency
// ("encoder.request"), request/retry/failure counters, and cache
// hit/miss/eviction counters. A nil registry keeps instrumentation
// disabled.
func WithMetrics(reg *obs.Registry) RemoteOption {
	return func(r *Remote) { r.reg = reg }
}

// WithFaultInjector arms a fault injector on this backend only (sites
// encoder.client.request and encoder.client.body).
func WithFaultInjector(in *faultinject.Injector) RemoteOption {
	return func(r *Remote) { r.inject = in }
}

// WithJitterRand replaces the backoff jitter's randomness source, pinning
// the retry schedule for tests.
func WithJitterRand(rng *rand.Rand) RemoteOption {
	return func(r *Remote) {
		if rng != nil {
			r.randN = func(n time.Duration) time.Duration {
				return time.Duration(rng.Int64N(int64(n)))
			}
		}
	}
}

// NewRemote returns a remote backend for the given encode endpoint URL.
func NewRemote(url string, opts ...RemoteOption) (*Remote, error) {
	if strings.TrimSpace(url) == "" {
		return nil, fmt.Errorf("encoder: remote backend needs a server URL")
	}
	r := &Remote{
		url:      url,
		dim:      0, // filled below; New passes the configured dimension
		maxBatch: DefaultMaxBatch,
		hc:       http.DefaultClient,
		policy:   exchange.DefaultRetryPolicy(),
		randN:    func(n time.Duration) time.Duration { return rand.N(n) },
	}
	for _, o := range opts {
		o(r)
	}
	if r.dim <= 0 {
		return nil, fmt.Errorf("encoder: remote backend needs a positive dimension")
	}
	r.policy = normalizePolicy(r.policy)
	r.cache = newSigCache(r.capacity, r.store, r.reg)
	r.co.flush = r.flush
	r.co.window = r.maxBatch
	return r, nil
}

// normalizePolicy fills zero fields with the exchange client defaults —
// the same semantics as the exchange client's own policy handling.
func normalizePolicy(p exchange.RetryPolicy) exchange.RetryPolicy {
	def := exchange.DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = def.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = def.MaxDelay
	}
	if p.Timeout <= 0 {
		p.Timeout = def.Timeout
	}
	return p
}

// Dim implements embed.Encoder.
func (r *Remote) Dim() int { return r.dim }

// EncodeBatch implements embed.Encoder: cache lookups first, then the
// misses — deduplicated — through the coalescer, which groups concurrent
// misses into requests of at most the coalescing window. A cancelled ctx
// releases the caller promptly; an in-flight request finishes in the
// background and still feeds the cache.
func (r *Remote) EncodeBatch(ctx context.Context, texts []string) ([][]float64, error) {
	ctx, sp := obs.Start(ctx, "encoder.remote")
	sp.Annotate("texts", int64(len(texts)))
	defer sp.End()
	out := make([][]float64, len(texts))
	if len(texts) == 0 {
		return out, nil
	}
	// Cache pass: resolve hits, collect one pending item per distinct
	// missing text (batch-internal duplicates share it).
	byKey := make(map[string]*pending)
	itemOf := make([]*pending, len(texts))
	var misses []*pending
	for i, text := range texts {
		key := CacheKey(r.model, r.dim, text)
		if p, ok := byKey[key]; ok {
			itemOf[i] = p
			continue
		}
		if v, ok := r.cache.get(key); ok {
			out[i] = v
			continue
		}
		p := &pending{key: key, text: text, done: make(chan struct{})}
		byKey[key] = p
		itemOf[i] = p
		misses = append(misses, p)
	}
	sp.Annotate("misses", int64(len(misses)))
	if len(misses) > 0 {
		r.co.submit(misses)
	}
	for i := range texts {
		p := itemOf[i]
		if p == nil {
			continue // cache hit
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-p.done:
		}
		if p.err != nil {
			return nil, fmt.Errorf("encoder: remote %s: %w", r.url, p.err)
		}
		out[i] = append([]float64(nil), p.vec...)
	}
	return out, nil
}

// pending is one not-yet-encoded text awaiting a coalesced request.
type pending struct {
	key, text string
	done      chan struct{}
	vec       []float64
	err       error
}

// coalescer groups pending texts from concurrent EncodeBatch calls into
// requests of at most `window` texts. The drain goroutine is started on
// demand by the first submitter and exits once the queue runs dry — no
// long-lived goroutine, nothing to leak or Close.
type coalescer struct {
	mu       sync.Mutex
	queue    []*pending
	draining bool
	window   int
	flush    func(batch []*pending)
}

func (c *coalescer) submit(items []*pending) {
	c.mu.Lock()
	c.queue = append(c.queue, items...)
	start := !c.draining
	if start {
		c.draining = true
	}
	c.mu.Unlock()
	if start {
		go c.drain()
	}
}

func (c *coalescer) drain() {
	for {
		c.mu.Lock()
		if len(c.queue) == 0 {
			c.draining = false
			c.mu.Unlock()
			return
		}
		n := len(c.queue)
		if n > c.window {
			n = c.window
		}
		batch := c.queue[:n:n]
		c.queue = c.queue[n:]
		c.mu.Unlock()
		c.flush(batch)
	}
}

// flush sends one coalesced request and resolves its pending items. It
// runs on the drain goroutine with no caller context: callers may have
// gone away (cancellation), yet the result still warms the cache for the
// next run. The retry policy's per-attempt timeout bounds each attempt,
// so an abandoned flush terminates promptly.
func (r *Remote) flush(batch []*pending) {
	texts := make([]string, len(batch))
	for i, p := range batch {
		texts[i] = p.text
	}
	resp, err := r.post(texts)
	for i, p := range batch {
		if err != nil {
			p.err = err
		} else {
			p.vec = resp.Vectors[i]
			r.cache.put(p.key, p.vec)
		}
		close(p.done)
	}
}

// post runs one encode request through the retry loop: capped exponential
// backoff with jitter between attempts, per-attempt timeouts from the
// policy, Retry-After honoured as a backoff floor, and checksum
// validation of the response envelope.
func (r *Remote) post(texts []string) (*EncodeResponse, error) {
	payload, err := MarshalRequest(EncodeRequest{Model: r.model, Dim: r.dim, Texts: texts})
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.reg.Counter("encoder.retries").Inc()
			sleep(r.backoff(attempt, lastErr))
		}
		resp, err := r.once(payload, len(texts))
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryableEncode(err) {
			break
		}
	}
	r.reg.Counter("encoder.request_failures").Inc()
	return nil, fmt.Errorf("after %d attempts: %w", r.policy.MaxAttempts, lastErr)
}

// once performs a single attempt under the policy's per-attempt timeout.
// "encoder.client.request" (error/delay before the attempt) and
// "encoder.client.body" (response corruption, caught by the checksum
// trailer) are fault-injection hook points, mirroring the exchange client.
func (r *Remote) once(payload []byte, wantTexts int) (*EncodeResponse, error) {
	if err := r.hit("encoder.client.request"); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.policy.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/json")
	sw := r.reg.Clock()
	r.reg.Counter("encoder.requests").Inc()
	r.reg.Counter("encoder.texts").Add(int64(wantTexts))
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	r.reg.Histogram("encoder.request").ObserveSince(sw)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &encodeStatusError{
			code:       resp.StatusCode,
			body:       string(snippet),
			retryAfter: parseRetryAfterSeconds(resp.Header.Get("Retry-After")),
		}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody+1))
	if err != nil {
		return nil, err
	}
	if len(body) > maxResponseBody {
		return nil, fmt.Errorf("response exceeds %d bytes", maxResponseBody)
	}
	return UnmarshalResponse(r.corrupt("encoder.client.body", body), r.dim, wantTexts)
}

func (r *Remote) hit(site string) error {
	if r.inject != nil {
		return r.inject.Hit(site)
	}
	return faultinject.Hit(site)
}

func (r *Remote) corrupt(site string, b []byte) []byte {
	if r.inject != nil {
		return r.inject.Corrupt(site, b)
	}
	return faultinject.Corrupt(site, b)
}

// encodeStatusError is a non-2xx response; retryable for 5xx and 429.
type encodeStatusError struct {
	code       int
	body       string
	retryAfter time.Duration
}

func (e *encodeStatusError) Error() string {
	msg := strings.TrimSpace(e.body)
	if msg == "" {
		return fmt.Sprintf("http status %d", e.code)
	}
	return fmt.Sprintf("http status %d: %.120s", e.code, msg)
}

// retryableEncode mirrors the exchange client's retry classification: 5xx
// and 429 retry, any other HTTP answer (including a checksum-valid but
// malformed payload) does not, and transport-level failures do.
func retryableEncode(err error) bool {
	var se *encodeStatusError
	if errors.As(err, &se) {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	var netErr interface{ Timeout() bool }
	if errors.As(err, &netErr) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// backoff returns the jittered delay before retry number attempt (≥ 1):
// BaseDelay·2^(attempt−1) capped at MaxDelay, jittered uniformly over
// [delay/2, delay], floored by a server's Retry-After advice (itself
// capped at MaxDelay).
func (r *Remote) backoff(attempt int, lastErr error) time.Duration {
	delay := r.policy.BaseDelay
	for i := 1; i < attempt && delay < r.policy.MaxDelay; i++ {
		delay *= 2
	}
	if delay > r.policy.MaxDelay {
		delay = r.policy.MaxDelay
	}
	half := delay / 2
	d := half + r.randN(delay-half+1)
	var se *encodeStatusError
	if errors.As(lastErr, &se) && se.retryAfter > 0 {
		floor := se.retryAfter
		if floor > r.policy.MaxDelay {
			floor = r.policy.MaxDelay
		}
		if d < floor {
			d = floor
		}
	}
	return d
}

// parseRetryAfterSeconds reads delay-seconds Retry-After advice (the only
// form the stub and exchange servers emit); anything else yields 0.
func parseRetryAfterSeconds(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}
