package synth

import (
	"testing"
	"testing/quick"

	"collabscope/internal/core"
	"collabscope/internal/embed"
	"collabscope/internal/schema"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Schemas: 1}); err == nil {
		t.Fatal("1 schema should fail")
	}
	if _, err := Generate(Config{Schemas: 2, UnrelatedSchemas: 99}); err == nil {
		t.Fatal("too many unrelated schemas should fail")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	d, err := Generate(Config{Schemas: 3, UnrelatedSchemas: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Schemas) != 4 {
		t.Fatalf("schemas = %d", len(d.Schemas))
	}
	for _, s := range d.Schemas {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if s.NumTables() == 0 || s.NumAttributes() == 0 {
			t.Fatalf("%s is empty", s.Name)
		}
	}
	if err := d.Truth.Validate(d.Schemas); err != nil {
		t.Fatalf("ground truth invalid: %v", err)
	}
	if d.Truth.Len() == 0 {
		t.Fatal("no linkages generated")
	}
	ii, is := d.Truth.CountByType()
	if ii == 0 {
		t.Fatal("no inter-identical linkages")
	}
	_ = is
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Schemas: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Schemas: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Truth.Len() != b.Truth.Len() {
		t.Fatal("ground truth differs across runs")
	}
	for i := range a.Schemas {
		ea, eb := a.Schemas[i].Elements(), b.Schemas[i].Elements()
		if len(ea) != len(eb) {
			t.Fatalf("schema %d sizes differ", i)
		}
		for j := range ea {
			if ea[j].Text != eb[j].Text {
				t.Fatalf("schema %d element %d differs: %q vs %q", i, j, ea[j].Text, eb[j].Text)
			}
		}
	}
	c, err := Generate(Config{Schemas: 3, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if sameElements(a.Schemas[0], c.Schemas[0]) {
		t.Fatal("different seeds should differ")
	}
}

func sameElements(a, b *schema.Schema) bool {
	ea, eb := a.Elements(), b.Elements()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i].Text != eb[i].Text {
			return false
		}
	}
	return true
}

func TestUnrelatedSchemasAreFullyUnlinkable(t *testing.T) {
	d, err := Generate(Config{Schemas: 2, UnrelatedSchemas: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	labels := d.Labels()
	for id, linkable := range labels {
		if linkable && len(id.Schema) > 9 && id.Schema[:9] == "Unrelated" {
			t.Fatalf("unrelated element %v marked linkable", id)
		}
	}
}

func TestSplitConceptsProduceSubTypedLinks(t *testing.T) {
	// With SplitProb 1 on one schema family and 0.0001 (≈ combined) being
	// impossible to force per schema, use a high split probability and
	// verify IS links exist between combined and split instantiations.
	d, err := Generate(Config{Schemas: 4, SplitProb: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	_, is := d.Truth.CountByType()
	if is == 0 {
		t.Fatal("expected inter-sub-typed linkages from split concepts")
	}
}

func TestFillerPerTable(t *testing.T) {
	sparse, err := Generate(Config{Schemas: 2, FillerPerTable: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// FillerPerTable < 0 means "no filler" (0 means default).
	dense, err := Generate(Config{Schemas: 2, FillerPerTable: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Schemas[0].NumAttributes() <= sparse.Schemas[0].NumAttributes() {
		t.Fatalf("filler did not grow schema: %d vs %d",
			dense.Schemas[0].NumAttributes(), sparse.Schemas[0].NumAttributes())
	}
}

func TestWithHRWidensSchemas(t *testing.T) {
	base, err := Generate(Config{Schemas: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := Generate(Config{Schemas: 2, WithHR: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if hr.Schemas[0].NumTables() <= base.Schemas[0].NumTables() {
		t.Fatal("WithHR should add tables")
	}
}

// Property: generated datasets always validate, their ground truth
// endpoints always exist, and derived labels cover every element.
func TestGenerateWellFormedProperty(t *testing.T) {
	f := func(seed int64, k, u uint8) bool {
		cfg := Config{
			Schemas:          2 + int(k%5),
			UnrelatedSchemas: int(u % 3),
			Seed:             seed,
		}
		d, err := Generate(cfg)
		if err != nil {
			return false
		}
		for _, s := range d.Schemas {
			if s.Validate() != nil {
				return false
			}
		}
		if d.Truth.Validate(d.Schemas) != nil {
			return false
		}
		labels := d.Labels()
		total := 0
		for _, s := range d.Schemas {
			total += s.NumElements()
		}
		return len(labels) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Integration: collaborative scoping on a synthetic scenario separates the
// unrelated schemas, as on the curated datasets.
func TestCollaborativeScopingOnSynthetic(t *testing.T) {
	d, err := Generate(Config{Schemas: 3, UnrelatedSchemas: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	enc := embed.NewHashEncoder(embed.WithDim(256))
	sets := embed.EncodeSchemas(enc, d.Schemas)
	scoper, err := core.NewScoper(sets)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := scoper.Scope(0.8)
	if err != nil {
		t.Fatal(err)
	}
	var bizKept, bizTotal, unrelKept, unrelTotal int
	for id, ok := range keep {
		if len(id.Schema) > 9 && id.Schema[:9] == "Unrelated" {
			unrelTotal++
			if ok {
				unrelKept++
			}
		} else {
			bizTotal++
			if ok {
				bizKept++
			}
		}
	}
	bizRate := float64(bizKept) / float64(bizTotal)
	unrelRate := float64(unrelKept) / float64(unrelTotal)
	if bizRate <= unrelRate {
		t.Fatalf("business keep rate %.2f should exceed unrelated %.2f", bizRate, unrelRate)
	}
}

func TestAllDomainsGenerate(t *testing.T) {
	base, err := Generate(Config{Schemas: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Generate(Config{
		Schemas: 3, WithHR: true, WithFinance: true, WithLogistics: true, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Schemas[0].NumTables() <= base.Schemas[0].NumTables()+2 {
		t.Fatalf("all domains should add ≥ 3 tables: %d vs %d",
			full.Schemas[0].NumTables(), base.Schemas[0].NumTables())
	}
	if err := full.Truth.Validate(full.Schemas); err != nil {
		t.Fatal(err)
	}
	// More shared vocabulary → more linkages.
	if full.Truth.Len() <= base.Truth.Len() {
		t.Fatalf("linkages did not grow: %d vs %d", full.Truth.Len(), base.Truth.Len())
	}
}
