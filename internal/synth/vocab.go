// Package synth generates synthetic multi-source schema matching scenarios
// with controllable heterogeneity in volume (tables/attributes per schema),
// design (combined versus split concepts, naming conventions), and domain
// (shared versus unrelated vocabularies) — the three axes of Section 2.4 of
// the paper. Generated datasets come with exact ground truth, enabling
// scalability experiments beyond the fixed OC3 / OC3-FO scenarios and
// property tests at scale.
package synth

import "collabscope/internal/schema"

// concept is a semantic unit an attribute can express. Synonym spellings
// model vendor vocabulary differences; splits model design heterogeneity
// (one schema stores full_name, another first_name + last_name).
type concept struct {
	key      string
	names    []string // synonym spellings, one picked per schema
	typ      schema.DataType
	splits   []concept // non-empty: the split representation
	isKey    bool
	isForKey bool
}

// tableConcept is a semantic unit a table can express.
type tableConcept struct {
	key      string
	names    []string
	core     []concept // attributes every instantiation carries
	optional []concept // attributes a schema may or may not carry
}

// domain is a coherent vocabulary of table concepts plus a private pool of
// domain-specific filler attributes that never link across domains.
type domain struct {
	name   string
	tables []tableConcept
	filler []concept
}

func c(key string, typ schema.DataType, names ...string) concept {
	return concept{key: key, names: names, typ: typ}
}

func ckey(key string, names ...string) concept {
	return concept{key: key, names: names, typ: schema.TypeNumber, isKey: true}
}

func cfk(key string, names ...string) concept {
	return concept{key: key, names: names, typ: schema.TypeNumber, isForKey: true}
}

func split(base concept, parts ...concept) concept {
	base.splits = parts
	return base
}

// commerceDomain models the order-customer world of the paper's datasets.
func commerceDomain() domain {
	customerName := split(
		c("customer-name", schema.TypeText, "NAME", "FULL_NAME", "CUSTOMER_NAME"),
		c("first-name", schema.TypeText, "FIRST_NAME", "GIVEN_NAME", "FORENAME"),
		c("last-name", schema.TypeText, "LAST_NAME", "FAMILY_NAME", "SURNAME"),
	)
	address := split(
		c("address", schema.TypeText, "ADDRESS", "FULL_ADDRESS", "POSTAL_ADDRESS"),
		c("street", schema.TypeText, "STREET", "ADDRESS_LINE1", "STREET_ADDRESS"),
		c("city", schema.TypeText, "CITY", "TOWN", "LOCALITY_NAME"),
		c("postal", schema.TypeText, "POSTAL_CODE", "ZIP", "POSTCODE"),
	)
	return domain{
		name: "commerce",
		tables: []tableConcept{
			{
				key:   "customer",
				names: []string{"CUSTOMERS", "CLIENTS", "BUYERS", "ACCOUNTS"},
				core: []concept{
					ckey("customer-id", "CUSTOMER_ID", "CLIENT_ID", "CID", "BUYER_NO"),
					customerName,
					c("email", schema.TypeText, "EMAIL", "EMAIL_ADDRESS", "MAIL"),
					c("phone", schema.TypeText, "PHONE", "TELEPHONE", "PHONE_NUMBER"),
				},
				optional: []concept{
					address,
					c("credit-limit", schema.TypeDecimal, "CREDIT_LIMIT", "CREDIT_CAP"),
					c("country", schema.TypeText, "COUNTRY", "NATION"),
				},
			},
			{
				key:   "order",
				names: []string{"ORDERS", "PURCHASES", "SALES"},
				core: []concept{
					ckey("order-id", "ORDER_ID", "ORDER_NUMBER", "PURCHASE_ID"),
					cfk("order-customer", "CUSTOMER_ID", "CLIENT_ID", "BUYER_NO"),
					c("order-date", schema.TypeDate, "ORDER_DATE", "PURCHASE_DATE", "ORDER_DATETIME"),
					c("order-status", schema.TypeText, "STATUS", "ORDER_STATUS", "STATE"),
				},
				optional: []concept{
					c("order-total", schema.TypeDecimal, "TOTAL", "TOTAL_AMOUNT", "ORDER_TOTAL"),
					c("ship-date", schema.TypeDate, "SHIPPED_DATE", "DELIVERY_DATE", "DISPATCH_DATE"),
				},
			},
			{
				key:   "product",
				names: []string{"PRODUCTS", "ARTICLES", "GOODS", "ITEMS"},
				core: []concept{
					ckey("product-id", "PRODUCT_ID", "PRODUCT_CODE", "ARTICLE_NO"),
					c("product-name", schema.TypeText, "PRODUCT_NAME", "NAME", "TITLE"),
					c("price", schema.TypeDecimal, "PRICE", "UNIT_PRICE", "COST"),
				},
				optional: []concept{
					c("stock", schema.TypeNumber, "STOCK", "QUANTITY_IN_STOCK", "INVENTORY_COUNT"),
					c("vendor", schema.TypeText, "VENDOR", "SUPPLIER", "MANUFACTURER"),
					c("product-desc", schema.TypeText, "DESCRIPTION", "DETAILS", "PRODUCT_DESCRIPTION"),
				},
			},
		},
		filler: []concept{
			c("loyalty", schema.TypeText, "LOYALTY_TIER"),
			c("newsletter", schema.TypeBoolean, "NEWSLETTER_OPT_IN"),
			c("tax-class", schema.TypeText, "TAX_CLASS"),
			c("warehouse-zone", schema.TypeText, "WAREHOUSE_ZONE"),
			c("audit-user", schema.TypeText, "LAST_MODIFIED_BY"),
			c("audit-time", schema.TypeTimestamp, "LAST_MODIFIED_AT"),
			c("legacy-flag", schema.TypeBoolean, "LEGACY_FLAG"),
			c("sync-token", schema.TypeText, "SYNC_TOKEN"),
		},
	}
}

// hrDomain is a second linkable business domain.
func hrDomain() domain {
	return domain{
		name: "hr",
		tables: []tableConcept{
			{
				key:   "employee",
				names: []string{"EMPLOYEES", "STAFF", "WORKERS"},
				core: []concept{
					ckey("employee-id", "EMPLOYEE_ID", "STAFF_NO", "WORKER_ID"),
					c("employee-name", schema.TypeText, "NAME", "EMPLOYEE_NAME", "FULL_NAME"),
					c("job-title", schema.TypeText, "JOB_TITLE", "POSITION_TITLE", "ROLE"),
				},
				optional: []concept{
					c("salary", schema.TypeDecimal, "SALARY", "BASE_PAY", "COMPENSATION"),
					c("hire-date", schema.TypeDate, "HIRE_DATE", "START_DATE", "JOINED_ON"),
				},
			},
			{
				key:   "department",
				names: []string{"DEPARTMENTS", "DIVISIONS", "UNITS"},
				core: []concept{
					ckey("department-id", "DEPARTMENT_ID", "DEPT_NO", "DIVISION_ID"),
					c("department-name", schema.TypeText, "DEPARTMENT_NAME", "DEPT_NAME", "DIVISION_NAME"),
				},
				optional: []concept{
					c("budget", schema.TypeDecimal, "BUDGET", "ANNUAL_BUDGET"),
					c("dept-location", schema.TypeText, "LOCATION", "SITE", "CAMPUS"),
				},
			},
		},
		filler: []concept{
			c("badge", schema.TypeText, "BADGE_COLOR"),
			c("parking", schema.TypeText, "PARKING_SPOT"),
			c("union", schema.TypeBoolean, "UNION_MEMBER"),
			c("review-cycle", schema.TypeText, "REVIEW_CYCLE"),
			c("cost-center", schema.TypeText, "COST_CENTER_CODE"),
		},
	}
}

// financeDomain is a third linkable business domain.
func financeDomain() domain {
	return domain{
		name: "finance",
		tables: []tableConcept{
			{
				key:   "invoice",
				names: []string{"INVOICES", "BILLS", "RECEIVABLES"},
				core: []concept{
					ckey("invoice-id", "INVOICE_ID", "BILL_NO", "INVOICE_NUMBER"),
					c("invoice-date", schema.TypeDate, "INVOICE_DATE", "BILLING_DATE", "ISSUED_ON"),
					c("invoice-amount", schema.TypeDecimal, "AMOUNT", "TOTAL_DUE", "INVOICE_TOTAL"),
					c("invoice-currency", schema.TypeText, "CURRENCY", "CURRENCY_CODE"),
				},
				optional: []concept{
					c("due-date", schema.TypeDate, "DUE_DATE", "PAYMENT_DEADLINE"),
					c("paid-flag", schema.TypeBoolean, "PAID", "IS_SETTLED"),
				},
			},
			{
				key:   "payment",
				names: []string{"PAYMENTS", "TRANSACTIONS", "SETTLEMENTS"},
				core: []concept{
					ckey("payment-id", "PAYMENT_ID", "TRANSACTION_ID", "SETTLEMENT_NO"),
					cfk("payment-invoice", "INVOICE_ID", "BILL_NO"),
					c("payment-date", schema.TypeDate, "PAYMENT_DATE", "SETTLED_ON"),
					c("payment-amount", schema.TypeDecimal, "AMOUNT", "PAID_AMOUNT"),
				},
				optional: []concept{
					c("payment-method", schema.TypeText, "METHOD", "PAYMENT_METHOD", "CHANNEL"),
				},
			},
		},
		filler: []concept{
			c("ledger-code", schema.TypeText, "LEDGER_CODE"),
			c("fiscal-period", schema.TypeText, "FISCAL_PERIOD"),
			c("vat-rate", schema.TypeDecimal, "VAT_RATE"),
			c("dunning-level", schema.TypeNumber, "DUNNING_LEVEL"),
		},
	}
}

// logisticsDomain is a fourth linkable business domain.
func logisticsDomain() domain {
	return domain{
		name: "logistics",
		tables: []tableConcept{
			{
				key:   "shipment",
				names: []string{"SHIPMENTS", "DELIVERIES", "DISPATCHES"},
				core: []concept{
					ckey("shipment-id", "SHIPMENT_ID", "DELIVERY_NO", "TRACKING_ID"),
					c("ship-date", schema.TypeDate, "SHIP_DATE", "DISPATCH_DATE", "SENT_ON"),
					c("ship-status", schema.TypeText, "STATUS", "DELIVERY_STATUS"),
					c("carrier", schema.TypeText, "CARRIER", "COURIER", "FREIGHT_COMPANY"),
				},
				optional: []concept{
					c("weight", schema.TypeDecimal, "WEIGHT_KG", "GROSS_WEIGHT"),
					c("destination-city", schema.TypeText, "DESTINATION_CITY", "DELIVERY_CITY"),
				},
			},
			{
				key:   "warehouse",
				names: []string{"WAREHOUSES", "DEPOTS", "HUBS"},
				core: []concept{
					ckey("warehouse-id", "WAREHOUSE_ID", "DEPOT_NO", "HUB_ID"),
					c("warehouse-name", schema.TypeText, "WAREHOUSE_NAME", "DEPOT_NAME", "HUB_NAME"),
					c("warehouse-city", schema.TypeText, "CITY", "LOCATION_CITY"),
				},
				optional: []concept{
					c("capacity", schema.TypeNumber, "CAPACITY_PALLETS", "MAX_PALLETS"),
				},
			},
		},
		filler: []concept{
			c("dock-door", schema.TypeText, "DOCK_DOOR"),
			c("hazmat", schema.TypeBoolean, "HAZMAT_FLAG"),
			c("route-code", schema.TypeText, "ROUTE_CODE"),
			c("temperature-zone", schema.TypeText, "TEMPERATURE_ZONE"),
		},
	}
}

// unrelatedDomains are vocabularies guaranteed not to link to the business
// domains — the Formula-One analogue for heterogeneity experiments.
func unrelatedDomains() []domain {
	return []domain{
		{
			name: "astronomy",
			tables: []tableConcept{
				{
					key:   "star",
					names: []string{"STARS"},
					core: []concept{
						ckey("star-id", "STAR_ID"),
						c("designation", schema.TypeText, "DESIGNATION"),
						c("magnitude", schema.TypeDecimal, "APPARENT_MAGNITUDE"),
						c("spectral", schema.TypeText, "SPECTRAL_CLASS"),
					},
					optional: []concept{
						c("parallax", schema.TypeDecimal, "PARALLAX_MAS"),
						c("constellation", schema.TypeText, "CONSTELLATION"),
					},
				},
				{
					key:   "observation",
					names: []string{"OBSERVATIONS"},
					core: []concept{
						ckey("obs-id", "OBSERVATION_ID"),
						cfk("obs-star", "STAR_ID"),
						c("telescope", schema.TypeText, "TELESCOPE"),
						c("exposure", schema.TypeDecimal, "EXPOSURE_SECONDS"),
					},
				},
			},
			filler: []concept{
				c("seeing", schema.TypeDecimal, "SEEING_ARCSEC"),
				c("airmass", schema.TypeDecimal, "AIRMASS"),
				c("filterband", schema.TypeText, "FILTER_BAND"),
			},
		},
		{
			name: "geology",
			tables: []tableConcept{
				{
					key:   "sample",
					names: []string{"ROCK_SAMPLES"},
					core: []concept{
						ckey("sample-id", "SAMPLE_ID"),
						c("lithology", schema.TypeText, "LITHOLOGY"),
						c("strata", schema.TypeText, "STRATIGRAPHIC_UNIT"),
						c("depth", schema.TypeDecimal, "DEPTH_METERS"),
					},
					optional: []concept{
						c("porosity", schema.TypeDecimal, "POROSITY_PCT"),
						c("grain", schema.TypeText, "GRAIN_SIZE"),
					},
				},
				{
					key:   "borehole",
					names: []string{"BOREHOLES"},
					core: []concept{
						ckey("borehole-id", "BOREHOLE_ID"),
						c("drill-rig", schema.TypeText, "DRILL_RIG"),
						c("azimuth", schema.TypeDecimal, "AZIMUTH_DEG"),
					},
				},
			},
			filler: []concept{
				c("core-box", schema.TypeText, "CORE_BOX_LABEL"),
				c("assay", schema.TypeDecimal, "ASSAY_PPM"),
			},
		},
	}
}
