package synth

import (
	"fmt"

	"collabscope/internal/datasets"
)

// TenantScenario couples one tenant of the scoping service with its
// synthetic schemas, for the service load generator.
type TenantScenario struct {
	// Tenant is the minted tenant name ("tenant-00", "tenant-01", …).
	Tenant string
	// Dataset holds the tenant's schemas with exact ground truth.
	Dataset *datasets.Dataset
}

// MintTenants generates n deterministic tenant scenarios. Every tenant
// draws from cfg with a tenant-specific seed offset, so the fleet is
// heterogeneous (different optional/split draws per tenant) yet fully
// reproducible from cfg.Seed.
func MintTenants(n int, cfg Config) ([]TenantScenario, error) {
	if n < 1 {
		return nil, fmt.Errorf("synth: need at least 1 tenant, got %d", n)
	}
	out := make([]TenantScenario, n)
	for i := range out {
		c := cfg
		// A large odd stride decorrelates the per-tenant generator streams.
		c.Seed = cfg.Seed + int64(i)*1_000_003
		d, err := Generate(c)
		if err != nil {
			return nil, fmt.Errorf("synth: mint tenant %d: %w", i, err)
		}
		out[i] = TenantScenario{Tenant: fmt.Sprintf("tenant-%02d", i), Dataset: d}
	}
	return out, nil
}
