package synth

import (
	"fmt"
	"math/rand"

	"collabscope/internal/linalg"
)

// SignatureConfig controls the synthetic signature-set generator used to
// exercise the ANN index backends at realistic scale (10⁵+ rows).
type SignatureConfig struct {
	// N is the number of signature rows (≥ 1).
	N int
	// Dim is the signature dimensionality. Default 32.
	Dim int
	// Clusters is the number of Gaussian centroids the rows group around —
	// the concept-cluster structure real signature sets exhibit. Default
	// max(1, N/400), capped at N.
	Clusters int
	// Spread is the within-cluster standard deviation relative to the
	// unit-scale centroids. Default 0.2.
	Spread float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c SignatureConfig) withDefaults() SignatureConfig {
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.Clusters == 0 {
		c.Clusters = c.N / 400
	}
	if c.Clusters < 1 {
		c.Clusters = 1
	}
	if c.Clusters > c.N {
		c.Clusters = c.N
	}
	if c.Spread == 0 {
		c.Spread = 0.2
	}
	return c
}

// Signatures generates a clustered synthetic signature matrix: Clusters
// unit-scale Gaussian centroids, with row i drawn around centroid i mod
// Clusters at the configured spread. Generation is deterministic in the
// config and streams row by row, so 10⁵–10⁶-row sets build in O(N·Dim)
// with no intermediate allocations.
func Signatures(cfg SignatureConfig) (*linalg.Dense, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("synth: signature set needs N ≥ 1, got %d", cfg.N)
	}
	if cfg.Dim < 0 || cfg.Clusters < 0 || cfg.Spread < 0 {
		return nil, fmt.Errorf("synth: signature config values must be ≥ 0 (dim %d, clusters %d, spread %g)",
			cfg.Dim, cfg.Clusters, cfg.Spread)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	centroids := linalg.NewDense(cfg.Clusters, cfg.Dim)
	for i := 0; i < cfg.Clusters; i++ {
		row := centroids.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	x := linalg.NewDense(cfg.N, cfg.Dim)
	for i := 0; i < cfg.N; i++ {
		cen := centroids.RowView(i % cfg.Clusters)
		row := x.RowView(i)
		for j := range row {
			row[j] = cen[j] + cfg.Spread*rng.NormFloat64()
		}
	}
	return x, nil
}

// PerturbedQueries draws nq query vectors, each a small Gaussian
// perturbation of a uniformly chosen row of x — the re-lookup workload of
// the matchers and the blocking stage.
func PerturbedQueries(x *linalg.Dense, nq int, noise float64, seed int64) *linalg.Dense {
	rng := rand.New(rand.NewSource(seed))
	q := linalg.NewDense(nq, x.Cols())
	for i := 0; i < nq; i++ {
		src := x.RowView(rng.Intn(x.Rows()))
		row := q.RowView(i)
		for j := range row {
			row[j] = src[j] + noise*rng.NormFloat64()
		}
	}
	return q
}
