package synth

import (
	"testing"

	"collabscope/internal/linalg"
)

func TestSignaturesDeterministicAndClustered(t *testing.T) {
	cfg := SignatureConfig{N: 2000, Dim: 16, Clusters: 10, Spread: 0.1, Seed: 7}
	a, err := Signatures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Signatures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 2000 || a.Cols() != 16 {
		t.Fatalf("shape = %d×%d", a.Rows(), a.Cols())
	}
	for i := 0; i < a.Rows(); i++ {
		ra, rb := a.RowView(i), b.RowView(i)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("row %d col %d: %v vs %v — generation must be seed-deterministic", i, j, ra[j], rb[j])
			}
		}
	}
	// Same-cluster rows (i, i+Clusters) must sit much closer than
	// rows of different clusters at this spread.
	same := linalg.SquaredDistance(a.RowView(0), a.RowView(10))
	cross := linalg.SquaredDistance(a.RowView(0), a.RowView(1))
	if same >= cross {
		t.Fatalf("same-cluster distance %v ≥ cross-cluster %v", same, cross)
	}
}

func TestSignaturesValidation(t *testing.T) {
	if _, err := Signatures(SignatureConfig{N: 0}); err == nil {
		t.Fatal("N = 0 must error")
	}
	if _, err := Signatures(SignatureConfig{N: 10, Spread: -1}); err == nil {
		t.Fatal("negative spread must error")
	}
	// Defaults: single row collapses to one cluster.
	x, err := Signatures(SignatureConfig{N: 1, Seed: 3})
	if err != nil || x.Rows() != 1 || x.Cols() != 32 {
		t.Fatalf("defaults: %v %v", x, err)
	}
}

func TestPerturbedQueriesStayNearSource(t *testing.T) {
	x, err := Signatures(SignatureConfig{N: 500, Dim: 8, Clusters: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	q := PerturbedQueries(x, 20, 0.01, 12)
	if q.Rows() != 20 || q.Cols() != 8 {
		t.Fatalf("shape = %d×%d", q.Rows(), q.Cols())
	}
	// Every query must have some row within the perturbation scale.
	for i := 0; i < q.Rows(); i++ {
		best := linalg.SquaredDistance(q.RowView(i), x.RowView(0))
		for r := 1; r < x.Rows(); r++ {
			if d := linalg.SquaredDistance(q.RowView(i), x.RowView(r)); d < best {
				best = d
			}
		}
		if best > 0.01 {
			t.Fatalf("query %d: nearest row at %v, want ≤ 0.01", i, best)
		}
	}
}
