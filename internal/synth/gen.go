package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"collabscope/internal/datasets"
	"collabscope/internal/schema"
)

// Config controls a synthetic scenario. The three probability knobs map
// onto the paper's heterogeneity axes: OptionalProb (volume), SplitProb
// (design), and UnrelatedSchemas (domain).
type Config struct {
	// Schemas is the number of business schemas drawn from the shared
	// commerce domain (≥ 2).
	Schemas int
	// WithHR adds the HR domain's tables to every business schema,
	// widening the shared vocabulary.
	WithHR bool
	// WithFinance and WithLogistics likewise add those domains.
	WithFinance, WithLogistics bool
	// UnrelatedSchemas appends schemas from unrelated domains whose
	// elements are all unlinkable.
	UnrelatedSchemas int
	// OptionalProb is the probability each optional concept materialises
	// in a schema (volume heterogeneity). Default 0.6.
	OptionalProb float64
	// SplitProb is the probability a splittable concept appears in its
	// split form (design heterogeneity). Default 0.4.
	SplitProb float64
	// FillerPerTable adds this many unlinkable filler attributes to every
	// table. Default 2.
	FillerPerTable int
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.OptionalProb == 0 {
		c.OptionalProb = 0.6
	}
	if c.SplitProb == 0 {
		c.SplitProb = 0.4
	}
	if c.FillerPerTable == 0 {
		c.FillerPerTable = 2
	}
	return c
}

// caseStyle renders canonical UPPER_SNAKE concept names in a schema-wide
// naming convention.
type caseStyle int

const (
	upperSnake caseStyle = iota
	lowerSnake
	camelCase
)

func (cs caseStyle) render(upper string) string {
	switch cs {
	case lowerSnake:
		return strings.ToLower(upper)
	case camelCase:
		parts := strings.Split(strings.ToLower(upper), "_")
		for i := 1; i < len(parts); i++ {
			if parts[i] != "" {
				parts[i] = strings.ToUpper(parts[i][:1]) + parts[i][1:]
			}
		}
		return strings.Join(parts, "")
	default:
		return upper
	}
}

// instantiation records where a concept materialised, for ground-truth
// derivation.
type instantiation struct {
	id    schema.ElementID
	split bool // the element is a split part or a combined form?
}

// Generate builds a synthetic dataset with exact ground truth.
func Generate(cfg Config) (*datasets.Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Schemas < 2 {
		return nil, fmt.Errorf("synth: need at least 2 business schemas, got %d", cfg.Schemas)
	}
	unrelated := unrelatedDomains()
	if cfg.UnrelatedSchemas > len(unrelated) {
		return nil, fmt.Errorf("synth: at most %d unrelated schemas available, got %d",
			len(unrelated), cfg.UnrelatedSchemas)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	doms := []domain{commerceDomain()}
	if cfg.WithHR {
		doms = append(doms, hrDomain())
	}
	if cfg.WithFinance {
		doms = append(doms, financeDomain())
	}
	if cfg.WithLogistics {
		doms = append(doms, logisticsDomain())
	}

	// attrConcepts maps attribute concept key → instantiations across all
	// schemas; tableConcepts likewise for tables. combinedOf maps a split
	// part's key to its combined concept key.
	attrInsts := map[string][]schema.ElementID{}
	tableInsts := map[string][]schema.ElementID{}
	combinedParts := map[string][]string{} // combined key → part keys

	var schemas []*schema.Schema
	for i := 0; i < cfg.Schemas; i++ {
		name := fmt.Sprintf("Biz%02d", i+1)
		style := caseStyle(i % 3)
		s := &schema.Schema{Name: name}
		for _, d := range doms {
			for _, tc := range d.tables {
				t := buildTable(rng, cfg, style, name, tc, attrInsts, combinedParts)
				addFiller(rng, cfg, style, &t, d.filler, i)
				s.Tables = append(s.Tables, t)
				tableInsts[tc.key] = append(tableInsts[tc.key], schema.TableID(name, t.Name))
			}
		}
		s.Normalize()
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("synth: generated schema invalid: %w", err)
		}
		schemas = append(schemas, s)
	}

	// Unrelated schemas: instantiate but record nothing in the
	// ground-truth maps (each unrelated domain appears exactly once).
	for i := 0; i < cfg.UnrelatedSchemas; i++ {
		d := unrelated[i]
		name := fmt.Sprintf("Unrelated-%s", d.name)
		style := caseStyle(rng.Intn(3))
		s := &schema.Schema{Name: name}
		discardAttr := map[string][]schema.ElementID{}
		discardParts := map[string][]string{}
		for _, tc := range d.tables {
			t := buildTable(rng, cfg, style, name, tc, discardAttr, discardParts)
			addFiller(rng, cfg, style, &t, d.filler, cfg.Schemas+i)
			s.Tables = append(s.Tables, t)
		}
		s.Normalize()
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("synth: generated schema invalid: %w", err)
		}
		schemas = append(schemas, s)
	}

	truth := deriveTruth(attrInsts, tableInsts, combinedParts)
	return &datasets.Dataset{
		Name:    fmt.Sprintf("Synth(k=%d,u=%d,seed=%d)", cfg.Schemas, cfg.UnrelatedSchemas, cfg.Seed),
		Schemas: schemas,
		Truth:   truth,
	}, nil
}

// buildTable instantiates one table concept in one schema.
func buildTable(rng *rand.Rand, cfg Config, style caseStyle, schemaName string,
	tc tableConcept, attrInsts map[string][]schema.ElementID, combinedParts map[string][]string) schema.Table {

	tName := style.render(tc.names[rng.Intn(len(tc.names))])
	t := schema.Table{Name: tName}
	add := func(con concept) {
		if len(con.splits) > 0 {
			combinedParts[con.key] = partKeys(con)
			if rng.Float64() < cfg.SplitProb {
				for _, part := range con.splits {
					appendConcept(rng, style, schemaName, &t, part, attrInsts)
				}
				return
			}
		}
		appendConcept(rng, style, schemaName, &t, con, attrInsts)
	}
	for _, con := range tc.core {
		add(con)
	}
	for _, con := range tc.optional {
		if rng.Float64() < cfg.OptionalProb {
			add(con)
		}
	}
	return t
}

func partKeys(con concept) []string {
	keys := make([]string, len(con.splits))
	for i, p := range con.splits {
		keys[i] = p.key
	}
	return keys
}

// appendConcept renders one concept as an attribute and records its
// instantiation for ground-truth derivation.
func appendConcept(rng *rand.Rand, style caseStyle, schemaName string,
	t *schema.Table, con concept, attrInsts map[string][]schema.ElementID) {

	name := style.render(con.names[rng.Intn(len(con.names))])
	// Per-table attribute names must be unique; on collision try other
	// synonyms, then suffix.
	if hasAttr(t, name) {
		placed := false
		for _, alt := range con.names {
			if n := style.render(alt); !hasAttr(t, n) {
				name, placed = n, true
				break
			}
		}
		if !placed {
			name = name + "_2"
		}
	}
	constraint := schema.NoConstraint
	switch {
	case con.isKey:
		constraint = schema.PrimaryKey
	case con.isForKey:
		constraint = schema.ForeignKey
	}
	t.Attributes = append(t.Attributes, schema.Attribute{
		Name: name, Type: con.typ, Constraint: constraint,
	})
	attrInsts[con.key] = append(attrInsts[con.key], schema.AttributeID(schemaName, t.Name, name))
}

func hasAttr(t *schema.Table, name string) bool {
	for _, a := range t.Attributes {
		if strings.EqualFold(a.Name, name) {
			return true
		}
	}
	return false
}

// addFiller appends unlinkable attributes: one (at most) reserved filler
// concept unique to this schema index, then synthetic nonsense columns.
func addFiller(rng *rand.Rand, cfg Config, style caseStyle, t *schema.Table, filler []concept, schemaIdx int) {
	n := cfg.FillerPerTable
	if n <= 0 {
		return
	}
	// Reserved realistic filler: schemaIdx selects a disjoint concept so
	// no two schemas share one.
	if schemaIdx < len(filler) {
		f := filler[schemaIdx]
		name := style.render(f.names[0])
		if !hasAttr(t, name) {
			t.Attributes = append(t.Attributes, schema.Attribute{Name: name, Type: f.typ})
			n--
		}
	}
	// Synthetic nonsense columns are unique by construction.
	for ; n > 0; n-- {
		name := style.render(fmt.Sprintf("%s_X%04d", nonsenseWord(rng), rng.Intn(10000)))
		if hasAttr(t, name) {
			continue
		}
		t.Attributes = append(t.Attributes, schema.Attribute{Name: name, Type: schema.TypeText})
	}
}

var nonsenseWords = []string{
	"QFLX", "ZORB", "VANT", "KRIM", "PLEX", "TRUV", "WOBL", "SNER",
	"GLIP", "DRON", "MUNT", "FIZT",
}

func nonsenseWord(rng *rand.Rand) string {
	return nonsenseWords[rng.Intn(len(nonsenseWords))]
}

// deriveTruth builds L(S) from the recorded instantiations: same concept
// across schemas → inter-identical; combined form versus split part →
// inter-sub-typed; same table concept → inter-identical tables.
func deriveTruth(attrInsts, tableInsts map[string][]schema.ElementID,
	combinedParts map[string][]string) *schema.GroundTruth {

	g := schema.NewGroundTruth()
	link := func(a, b schema.ElementID, typ schema.LinkageType) {
		if a.Schema == b.Schema {
			return
		}
		g.MustAdd(schema.Linkage{A: a, B: b, Type: typ})
	}
	for _, insts := range attrInsts {
		for i := 0; i < len(insts); i++ {
			for j := i + 1; j < len(insts); j++ {
				link(insts[i], insts[j], schema.InterIdentical)
			}
		}
	}
	for combined, parts := range combinedParts {
		for _, whole := range attrInsts[combined] {
			for _, pk := range parts {
				for _, part := range attrInsts[pk] {
					link(whole, part, schema.InterSubTyped)
				}
			}
		}
	}
	for _, insts := range tableInsts {
		for i := 0; i < len(insts); i++ {
			for j := i + 1; j < len(insts); j++ {
				link(insts[i], insts[j], schema.InterIdentical)
			}
		}
	}
	return g
}
