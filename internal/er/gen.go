package er

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig controls the synthetic entity-resolution scenario generator.
type GenConfig struct {
	// Shared is the number of person entities present in BOTH sources
	// (with perturbed field values in the second).
	Shared int
	// NoiseA and NoiseB are source-exclusive person counts.
	NoiseA, NoiseB int
	// UnrelatedB adds records of a different entity type ("book") to the
	// second source — the domain-heterogeneity analogue.
	UnrelatedB int
	// Seed makes generation deterministic.
	Seed int64
}

var (
	firstNames = []string{
		"ALICE", "BRUNO", "CARLA", "DAVID", "ELENA", "FARID", "GRETA",
		"HUGO", "IRENE", "JONAS", "KARIM", "LUISA", "MARCO", "NADIA",
		"OSCAR", "PETRA", "QUINN", "ROSA", "STEFAN", "TARA",
	}
	lastNames = []string{
		"ADAMS", "BECKER", "CHEN", "DUARTE", "ERIKSEN", "FISCHER",
		"GARCIA", "HOFFMANN", "IBRAHIM", "JANSEN", "KOWALSKI", "LINDQVIST",
		"MORETTI", "NAKAMURA", "OKAFOR", "PETROV", "QUISPE", "ROSSI",
		"SANTOS", "TANAKA",
	}
	cities = []string{
		"BERLIN", "MADRID", "OSLO", "PORTO", "RIGA", "SOFIA", "TURIN",
		"UTRECHT", "VIENNA", "WARSAW",
	}
	bookTitles = []string{
		"COMPILER DESIGN", "QUANTUM FIELDS", "BAROQUE MUSIC", "DEEP SEA BIOLOGY",
		"MEDIEVAL TRADE", "POLAR EXPEDITIONS", "CERAMIC GLAZES", "ORBITAL MECHANICS",
	}
)

// GenerateSources builds two record sources with a known duplicate set.
func GenerateSources(cfg GenConfig) (a, b Source, truth *Truth, err error) {
	if cfg.Shared <= 0 {
		return a, b, nil, fmt.Errorf("er: need at least 1 shared entity")
	}
	total := cfg.Shared + cfg.NoiseA + cfg.NoiseB
	if total > len(firstNames)*len(lastNames) {
		return a, b, nil, fmt.Errorf("er: %d entities exceed the name pool", total)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	a = Source{Name: "CRM"}
	b = Source{Name: "Billing"}
	truth = NewTruth()

	perm := rng.Perm(len(firstNames) * len(lastNames))
	person := func(i int) (string, string) {
		p := perm[i]
		return firstNames[p%len(firstNames)], lastNames[p/len(firstNames)]
	}

	idx := 0
	for i := 0; i < cfg.Shared; i++ {
		first, last := person(idx)
		idx++
		city := cities[rng.Intn(len(cities))]
		ra := Record{
			Source: a.Name, Key: fmt.Sprintf("a%03d", i), Entity: "person",
			Fields: map[string]string{"first_name": first, "last_name": last, "city": city},
		}
		rb := Record{
			Source: b.Name, Key: fmt.Sprintf("b%03d", i), Entity: "person",
			Fields: map[string]string{
				"first_name": perturb(rng, first),
				"last_name":  perturb(rng, last),
				"city":       city,
			},
		}
		a.Records = append(a.Records, ra)
		b.Records = append(b.Records, rb)
		truth.Add(ra.ID(), rb.ID())
	}
	for i := 0; i < cfg.NoiseA; i++ {
		first, last := person(idx)
		idx++
		a.Records = append(a.Records, Record{
			Source: a.Name, Key: fmt.Sprintf("an%03d", i), Entity: "person",
			Fields: map[string]string{
				"first_name": first, "last_name": last,
				"city": cities[rng.Intn(len(cities))],
			},
		})
	}
	for i := 0; i < cfg.NoiseB; i++ {
		first, last := person(idx)
		idx++
		b.Records = append(b.Records, Record{
			Source: b.Name, Key: fmt.Sprintf("bn%03d", i), Entity: "person",
			Fields: map[string]string{
				"first_name": first, "last_name": last,
				"city": cities[rng.Intn(len(cities))],
			},
		})
	}
	for i := 0; i < cfg.UnrelatedB; i++ {
		b.Records = append(b.Records, Record{
			Source: b.Name, Key: fmt.Sprintf("bu%03d", i), Entity: "book",
			Fields: map[string]string{
				"title":     bookTitles[rng.Intn(len(bookTitles))],
				"isbn":      fmt.Sprintf("978-%07d", rng.Intn(10000000)),
				"publisher": fmt.Sprintf("PRESS_%02d", rng.Intn(20)),
			},
		})
	}
	return a, b, truth, nil
}

// perturb applies a small typographic perturbation: truncation to an
// initial, a dropped character, or identity.
func perturb(rng *rand.Rand, s string) string {
	if len(s) < 3 {
		return s
	}
	switch rng.Intn(3) {
	case 0: // initial, as in "J." for "JONAS"
		return s[:1]
	case 1: // drop a middle character
		i := 1 + rng.Intn(len(s)-2)
		return s[:i] + s[i+1:]
	default:
		return strings.ToUpper(s)
	}
}
