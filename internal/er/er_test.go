package er

import (
	"strings"
	"testing"

	"collabscope/internal/ann"
	"collabscope/internal/embed"
	"collabscope/internal/linalg"
	"collabscope/internal/schema"
)

func testEncoder() embed.Encoder {
	return embed.NewHashEncoder(embed.WithDim(256))
}

func TestRecordSerializeDeterministic(t *testing.T) {
	r := Record{
		Source: "A", Key: "1", Entity: "person",
		Fields: map[string]string{"last_name": "CHEN", "first_name": "ALICE"},
	}
	got := r.Serialize()
	want := "person first_name ALICE last_name CHEN"
	if got != want {
		t.Fatalf("Serialize = %q, want %q", got, want)
	}
	if r.ID() != schema.AttributeID("A", "person", "1") {
		t.Fatalf("ID = %v", r.ID())
	}
}

func TestEncodeSourceValidation(t *testing.T) {
	enc := testEncoder()
	if _, err := EncodeSource(enc, Source{Name: "empty"}); err == nil {
		t.Fatal("empty source should fail")
	}
	wrongOwner := Source{Name: "A", Records: []Record{{Source: "B", Key: "1", Entity: "person"}}}
	if _, err := EncodeSource(enc, wrongOwner); err == nil {
		t.Fatal("mismatched record source should fail")
	}
	dup := Source{Name: "A", Records: []Record{
		{Source: "A", Key: "1", Entity: "person"},
		{Source: "A", Key: "1", Entity: "person"},
	}}
	if _, err := EncodeSource(enc, dup); err == nil {
		t.Fatal("duplicate keys should fail")
	}
}

func TestGenerateSources(t *testing.T) {
	a, b, truth, err := GenerateSources(GenConfig{Shared: 10, NoiseA: 5, NoiseB: 3, UnrelatedB: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != 15 || len(b.Records) != 17 {
		t.Fatalf("records = %d / %d", len(a.Records), len(b.Records))
	}
	if truth.Len() != 10 {
		t.Fatalf("truth = %d", truth.Len())
	}
	if _, _, _, err := GenerateSources(GenConfig{Shared: 0}); err == nil {
		t.Fatal("shared=0 should fail")
	}
	// Deterministic.
	a2, _, _, _ := GenerateSources(GenConfig{Shared: 10, NoiseA: 5, NoiseB: 3, UnrelatedB: 4, Seed: 1})
	for i := range a.Records {
		if a.Records[i].Serialize() != a2.Records[i].Serialize() {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestBlockingFindsDuplicates(t *testing.T) {
	enc := testEncoder()
	a, b, truth, err := GenerateSources(GenConfig{Shared: 20, NoiseA: 10, NoiseB: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := BlockTopK(enc, []Source{a, b}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := Evaluate(cands, truth)
	if e.PC < 0.8 {
		t.Fatalf("blocking recall = %.3f, want ≥ 0.8 (%d/%d found)", e.PC, e.Correct, truth.Len())
	}
}

func TestBlockingNeverPairsAcrossEntityTypes(t *testing.T) {
	enc := testEncoder()
	a, b, _, err := GenerateSources(GenConfig{Shared: 5, UnrelatedB: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := BlockTopK(enc, []Source{a, b}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cands {
		if p.A.Table != p.B.Table {
			t.Fatalf("cross-entity pair %v ~ %v", p.A, p.B)
		}
	}
}

func TestScopingPrunesUnmatchableRecords(t *testing.T) {
	// The headline ER claim: collaborative scoping over record sources
	// prunes records without counterparts (especially the unrelated
	// "book" records), shrinking the blocking candidate space while
	// keeping completeness close.
	enc := testEncoder()
	a, b, truth, err := GenerateSources(GenConfig{Shared: 25, NoiseA: 8, NoiseB: 8, UnrelatedB: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sources := []Source{a, b}

	// Record signatures are dominated by per-record values (names), so
	// useful variance targets sit lower than for schema metadata.
	keep, err := Scope(enc, sources, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Books are structurally foreign to the CRM source's model: most must
	// be pruned.
	var bookKept, bookTotal int
	for id, ok := range keep {
		if id.Table == "book" {
			bookTotal++
			if ok {
				bookKept++
			}
		}
	}
	if bookTotal != 12 {
		t.Fatalf("book records = %d", bookTotal)
	}
	if bookKept > 2 {
		t.Fatalf("%d of %d unrelated book records survived scoping", bookKept, bookTotal)
	}

	full, err := BlockTopK(enc, sources, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	scoped, err := BlockTopK(enc, sources, keep, 3)
	if err != nil {
		t.Fatal(err)
	}
	ef, es := Evaluate(full, truth), Evaluate(scoped, truth)
	if es.Candidates >= ef.Candidates {
		t.Fatalf("scoping should shrink candidates: %d vs %d", es.Candidates, ef.Candidates)
	}
	if es.PC < ef.PC-0.30 {
		t.Fatalf("scoped completeness %.3f far below full %.3f", es.PC, ef.PC)
	}
	// Record-level pruning trades a little pair quality for the candidate
	// reduction; it must stay in the same range.
	if es.PQ < ef.PQ-0.05 {
		t.Fatalf("scoped pair quality %.3f far below full %.3f", es.PQ, ef.PQ)
	}
}

func TestEvaluateDeduplicates(t *testing.T) {
	truth := NewTruth()
	x := schema.AttributeID("A", "person", "1")
	y := schema.AttributeID("B", "person", "2")
	truth.Add(x, y)
	e := Evaluate([]CandidatePair{{A: x, B: y}, {A: y, B: x}}, truth)
	if e.Candidates != 1 || e.Correct != 1 || e.PQ != 1 || e.PC != 1 {
		t.Fatalf("eval = %+v", e)
	}
}

func TestMatchedRecords(t *testing.T) {
	truth := NewTruth()
	truth.Add(schema.AttributeID("A", "person", "1"), schema.AttributeID("B", "person", "2"))
	m := truth.MatchedRecords()
	if len(m) != 2 {
		t.Fatalf("matched = %v", m)
	}
}

func TestPerturbVariants(t *testing.T) {
	// All perturbation branches yield non-empty uppercase strings.
	a, _, _, err := GenerateSources(GenConfig{Shared: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a.Records {
		for _, v := range r.Fields {
			if v == "" || v != strings.ToUpper(v) {
				t.Fatalf("bad field value %q", v)
			}
		}
	}
}

func TestBlockTopKIndexBackends(t *testing.T) {
	enc := testEncoder()
	a, b, truth, err := GenerateSources(GenConfig{Shared: 40, NoiseA: 10, NoiseB: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := BlockTopK(enc, []Source{a, b}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A nil builder is the flat index: identical output.
	viaNil, err := BlockTopKIndex(enc, []Source{a, b}, nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaNil) != len(exact) {
		t.Fatalf("nil builder: %d pairs, flat %d", len(viaNil), len(exact))
	}
	for i := range exact {
		if viaNil[i] != exact[i] {
			t.Fatalf("pair %d: %v vs %v", i, viaNil[i], exact[i])
		}
	}
	// A sublinear backend must keep blocking completeness on this small,
	// well-separated scenario.
	exactEval := Evaluate(exact, truth)
	for _, cfg := range []ann.Config{
		{Kind: ann.KindHNSW, M: 8, Seed: 9},
		{Kind: ann.KindIVF, NLists: 8, NProbe: 4, Seed: 9},
	} {
		cands, err := BlockTopKIndex(enc, []Source{a, b}, nil, 3, func(x *linalg.Dense) (ann.Index, error) {
			return ann.Build(x, cfg)
		})
		if err != nil {
			t.Fatal(err)
		}
		if e := Evaluate(cands, truth); e.PC < exactEval.PC-0.05 {
			t.Errorf("%s: PC = %.3f, flat PC = %.3f", cfg.Kind, e.PC, exactEval.PC)
		}
	}
	// Builder errors propagate.
	if _, err := BlockTopKIndex(enc, []Source{a, b}, nil, 3, func(x *linalg.Dense) (ann.Index, error) {
		return ann.Build(x, ann.Config{Kind: ann.KindHNSW, M: 1})
	}); err == nil {
		t.Fatal("invalid index config must surface from blocking")
	}
}
