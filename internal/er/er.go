// Package er adapts collaborative scoping to entity resolution — the
// future-work direction of Section 5 and the setting of the authors' prior
// "Collective Scoping" work: multiple record sources, of which only a
// fraction of records have duplicates in other sources. Each source trains
// a local encoder-decoder over its record signatures; records no foreign
// model recognises are pruned before blocking, shrinking the candidate
// space without losing true matches.
//
// Records reuse the schema-element machinery by mapping a record to an
// ElementID{Schema: source, Table: entity type, Attribute: record key}.
package er

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"collabscope/internal/ann"
	"collabscope/internal/core"
	"collabscope/internal/embed"
	"collabscope/internal/linalg"
	"collabscope/internal/schema"
)

// Record is one entity description from one source.
type Record struct {
	// Source names the owning record source.
	Source string
	// Key identifies the record within its source.
	Key string
	// Entity is the entity type (e.g. "person"); records of different
	// entity types never pair.
	Entity string
	// Fields holds attribute name → value.
	Fields map[string]string
}

// ID maps the record onto the element-identifier space.
func (r Record) ID() schema.ElementID {
	return schema.AttributeID(r.Source, r.Entity, r.Key)
}

// Serialize renders the record as a text sequence: field names and values
// in sorted field order, the record-level analogue of T^a.
func (r Record) Serialize() string {
	fields := make([]string, 0, len(r.Fields))
	for f := range r.Fields {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	parts := make([]string, 0, 2*len(fields)+1)
	parts = append(parts, r.Entity)
	for _, f := range fields {
		parts = append(parts, f, r.Fields[f])
	}
	return strings.Join(parts, " ")
}

// Source is a named set of records.
type Source struct {
	Name    string
	Records []Record
}

// EncodeSource encodes all records of a source into a signature set. All
// record serialisations go to the encoder as one batch (amortising round
// trips on remote backends), validated through the same ingress guard as
// schema encoding.
func EncodeSource(enc embed.Encoder, src Source) (*embed.SignatureSet, error) {
	if len(src.Records) == 0 {
		return nil, fmt.Errorf("er: source %s has no records", src.Name)
	}
	els := make([]schema.Element, len(src.Records))
	seen := map[string]bool{}
	for i, r := range src.Records {
		if r.Source != src.Name {
			return nil, fmt.Errorf("er: record %s claims source %s inside source %s", r.Key, r.Source, src.Name)
		}
		if seen[r.Key] {
			return nil, fmt.Errorf("er: duplicate record key %s in source %s", r.Key, src.Name)
		}
		seen[r.Key] = true
		els[i] = schema.Element{ID: r.ID(), Text: r.Serialize()}
	}
	return embed.EncodeElementsContext(context.Background(), 0, enc, els)
}

// Scope runs collaborative scoping over record sources at explained
// variance v: every record is kept iff some other source's model
// reconstructs it within range.
func Scope(enc embed.Encoder, sources []Source, v float64) (map[schema.ElementID]bool, error) {
	sets := make([]*embed.SignatureSet, len(sources))
	for i, src := range sources {
		set, err := EncodeSource(enc, src)
		if err != nil {
			return nil, err
		}
		sets[i] = set
	}
	scoper, err := core.NewScoper(sets)
	if err != nil {
		return nil, err
	}
	return scoper.Scope(v)
}

// CandidatePair is a blocking candidate between records of two sources.
type CandidatePair struct {
	A, B schema.ElementID
}

func (p CandidatePair) canonical() CandidatePair {
	if p.B.Schema < p.A.Schema || (p.B.Schema == p.A.Schema && p.B.Attribute < p.A.Attribute) {
		p.A, p.B = p.B, p.A
	}
	return p
}

// IndexBuilder constructs the ANN index the blocking stage searches over
// one source's signature matrix — ann.Build curried with a config in
// practice. nil means the exact FlatIndex.
type IndexBuilder func(x *linalg.Dense) (ann.Index, error)

// BlockTopK generates candidate pairs by top-k nearest-neighbour search of
// every (kept) record against every other source's kept records, matching
// the paper's LSH-style semantic blocking. keep may be nil to block all
// records.
func BlockTopK(enc embed.Encoder, sources []Source, keep map[schema.ElementID]bool, k int) ([]CandidatePair, error) {
	return BlockTopKIndex(enc, sources, keep, k, nil)
}

// BlockTopKIndex is BlockTopK with the neighbour search running on a
// caller-chosen index backend: each source's kept signatures are indexed
// once, then every other source's records query it. A sublinear backend
// (hnsw, ivf) turns the O(records²) pairwise scan into the index's query
// cost, which is what makes 10⁵+-record blocking tractable.
func BlockTopKIndex(enc embed.Encoder, sources []Source, keep map[schema.ElementID]bool, k int, build IndexBuilder) ([]CandidatePair, error) {
	if build == nil {
		build = func(x *linalg.Dense) (ann.Index, error) { return ann.NewFlatIndex(x), nil }
	}
	sets := make([]*embed.SignatureSet, len(sources))
	for i, src := range sources {
		set, err := EncodeSource(enc, src)
		if err != nil {
			return nil, err
		}
		if keep != nil {
			set = set.Select(keep)
		}
		sets[i] = set
	}
	// One index per target source, built once and queried by every other
	// source.
	idxs := make([]ann.Index, len(sets))
	for j := range sets {
		if sets[j].Len() == 0 {
			continue
		}
		idx, err := build(sets[j].Matrix)
		if err != nil {
			return nil, fmt.Errorf("er: blocking index for source %s: %w", sources[j].Name, err)
		}
		idxs[j] = idx
	}
	seen := map[CandidatePair]bool{}
	var out []CandidatePair
	var sc ann.Scratch
	var hits []ann.Neighbor
	for i := range sets {
		for j := range sets {
			if i == j || sets[j].Len() == 0 {
				continue
			}
			idx := idxs[j]
			for q := 0; q < sets[i].Len(); q++ {
				hits = idx.SearchInto(sets[i].Matrix.RowView(q), k, hits, &sc)
				for _, hit := range hits {
					a, b := sets[i].IDs[q], sets[j].IDs[hit.Index]
					if a.Table != b.Table {
						continue // different entity types
					}
					p := (CandidatePair{A: a, B: b}).canonical()
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].A != out[b].A {
			return out[a].A.String() < out[b].A.String()
		}
		return out[a].B.String() < out[b].B.String()
	})
	return out, nil
}

// Truth is the set of true duplicate pairs.
type Truth struct {
	pairs map[CandidatePair]bool
}

// NewTruth returns an empty duplicate-pair set.
func NewTruth() *Truth { return &Truth{pairs: map[CandidatePair]bool{}} }

// Add records a true duplicate pair (symmetric).
func (t *Truth) Add(a, b schema.ElementID) {
	t.pairs[(CandidatePair{A: a, B: b}).canonical()] = true
}

// Len returns the number of true pairs.
func (t *Truth) Len() int { return len(t.pairs) }

// Contains reports whether the pair is a true duplicate.
func (t *Truth) Contains(p CandidatePair) bool { return t.pairs[p.canonical()] }

// MatchedRecords returns the set of records occurring in any true pair —
// the "linkable" records of Definition 1 transposed to entity resolution.
func (t *Truth) MatchedRecords() map[schema.ElementID]bool {
	out := map[schema.ElementID]bool{}
	for p := range t.pairs {
		out[p.A] = true
		out[p.B] = true
	}
	return out
}

// Eval holds blocking quality: pair quality, pair completeness, and the
// candidate count.
type Eval struct {
	PQ, PC     float64
	Candidates int
	Correct    int
}

// Evaluate scores candidate pairs against the truth.
func Evaluate(cands []CandidatePair, truth *Truth) Eval {
	var e Eval
	seen := map[CandidatePair]bool{}
	for _, p := range cands {
		p = p.canonical()
		if seen[p] {
			continue
		}
		seen[p] = true
		e.Candidates++
		if truth.Contains(p) {
			e.Correct++
		}
	}
	if e.Candidates > 0 {
		e.PQ = float64(e.Correct) / float64(e.Candidates)
	}
	if truth.Len() > 0 {
		e.PC = float64(e.Correct) / float64(truth.Len())
	}
	return e
}
