// Package faultinject provides deterministic, seed-driven fault injection
// for chaos-testing the pipeline's crash-safety claims.
//
// Production code exposes named hook points (sites) by calling Hit and
// Corrupt; both are no-ops costing one atomic load while no injector is
// armed, so hooks stay compiled into the hot paths permanently. A chaos
// test builds an Injector from a seed and a fault plan, arms it — globally
// with Arm, or on a single exchange server/client instance — and the
// injector then decides per (site, ordinal, fault) whether to fire. The
// decision is a pure function of the seed, so a fixed seed replays the
// exact same fault schedule on every run, independent of goroutine
// scheduling for sites whose faults use At ordinals or Rate 1.
//
// Current hook points:
//
//	parallel.item            — before each worker-pool item (Hit)
//	exchange.client.request  — before each HTTP attempt (Hit)
//	exchange.client.body     — fetched response bytes (Corrupt)
//	exchange.server.request  — hub request admission (Hit; error ⇒ 500)
//	exchange.server.body     — published model bytes (Corrupt)
//	exchange.service.assess  — assess computation (Hit; delays stall inside
//	                           the admission window, errors ⇒ 500)
//	schema.load              — schema JSON ingestion (Hit)
//	schema.load.bytes        — schema JSON payload (Corrupt)
//	embed.load               — signature-set ingestion (Hit)
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so tests can
// tell injected failures from organic ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind is a fault flavour.
type Kind int

// Fault kinds.
const (
	// KindError makes Hit return an injected error.
	KindError Kind = iota
	// KindPanic makes Hit panic (exercising panic-isolation layers).
	KindPanic
	// KindDelay makes Hit sleep for the fault's Delay before returning.
	KindDelay
	// KindCorrupt makes Corrupt flip one byte of the payload.
	KindCorrupt
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one entry of an injector's plan: at the named site, fire with
// probability Rate per hit — or exactly at the listed At ordinals (0-based
// hit counts) when At is non-empty, which is fully deterministic even under
// concurrent hits of the same site.
type Fault struct {
	Site  string
	Kind  Kind
	Rate  float64
	At    []uint64
	Delay time.Duration
}

// Event records one fired fault, for test assertions.
type Event struct {
	Site    string
	Kind    Kind
	Ordinal uint64
}

// Injector decides deterministically, from a seed and a fault plan, which
// hits of which sites fail and how. The zero value is not usable; call New.
type Injector struct {
	seed   uint64
	faults map[string][]Fault

	mu       sync.Mutex
	ordinals map[string]*atomic.Uint64
	events   []Event
}

// New returns an injector firing the given faults under the seed.
func New(seed int64, faults ...Fault) *Injector {
	in := &Injector{
		seed:     uint64(seed),
		faults:   map[string][]Fault{},
		ordinals: map[string]*atomic.Uint64{},
	}
	for _, f := range faults {
		in.faults[f.Site] = append(in.faults[f.Site], f)
	}
	return in
}

// Events returns a copy of the fired-fault log in firing order.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// next claims the ordinal of this hit of a site.
func (in *Injector) next(site string) uint64 {
	in.mu.Lock()
	ord, ok := in.ordinals[site]
	if !ok {
		ord = &atomic.Uint64{}
		in.ordinals[site] = ord
	}
	in.mu.Unlock()
	return ord.Add(1) - 1
}

// fires reports whether fault number idx of a site fires at an ordinal.
// The decision mixes seed, site, ordinal, and fault index through
// splitmix64, so it is a pure function of the plan — the same seed replays
// the same schedule.
func (in *Injector) fires(f Fault, site string, idx int, ordinal uint64) bool {
	if len(f.At) > 0 {
		for _, at := range f.At {
			if at == ordinal {
				return true
			}
		}
		return false
	}
	if f.Rate >= 1 {
		return true
	}
	if f.Rate <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(site))
	u := splitmix64(in.seed ^ h.Sum64() ^ (ordinal+1)*0x9e3779b97f4a7c15 ^ uint64(idx+1)*0xbf58476d1ce4e5b9)
	return float64(u>>11)/float64(1<<53) < f.Rate
}

func (in *Injector) record(site string, k Kind, ordinal uint64) {
	in.mu.Lock()
	in.events = append(in.events, Event{Site: site, Kind: k, Ordinal: ordinal})
	in.mu.Unlock()
}

// Hit evaluates the site's non-corruption faults at the current hit
// ordinal: delays sleep in place, errors return wrapping ErrInjected, and
// panics panic with a descriptive value. Multiple faults on one site are
// evaluated in plan order, so a delay can precede an error. A nil injector
// never fires, so instance-scoped hooks need no nil guard.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	faults := in.faults[site]
	if len(faults) == 0 {
		return nil
	}
	ordinal := in.next(site)
	for idx, f := range faults {
		if f.Kind == KindCorrupt || !in.fires(f, site, idx, ordinal) {
			continue
		}
		in.record(site, f.Kind, ordinal)
		switch f.Kind {
		case KindDelay:
			time.Sleep(f.Delay)
		case KindPanic:
			panic(fmt.Sprintf("faultinject: injected panic at %s (hit %d)", site, ordinal))
		default:
			return fmt.Errorf("%w: %s (hit %d)", ErrInjected, site, ordinal)
		}
	}
	return nil
}

// Corrupt evaluates the site's corruption faults and, when one fires, flips
// one deterministically chosen byte of b (in place) and returns it. A nil
// injector returns b untouched.
func (in *Injector) Corrupt(site string, b []byte) []byte {
	if in == nil {
		return b
	}
	faults := in.faults[site]
	if len(faults) == 0 || len(b) == 0 {
		return b
	}
	ordinal := in.next(site)
	for idx, f := range faults {
		if f.Kind != KindCorrupt || !in.fires(f, site, idx, ordinal) {
			continue
		}
		in.record(site, KindCorrupt, ordinal)
		h := fnv.New64a()
		h.Write([]byte(site))
		pos := splitmix64(in.seed^h.Sum64()^ordinal) % uint64(len(b))
		b[pos] ^= 0xff
	}
	return b
}

// splitmix64 is the standard 64-bit finalising mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// current is the globally armed injector; nil means every hook is a no-op.
var current atomic.Pointer[Injector]

// Arm makes in the process-global injector behind the package-level Hit and
// Corrupt hooks and returns the disarm function. Tests must disarm (via
// defer or t.Cleanup) before the next test arms its own plan.
func Arm(in *Injector) (disarm func()) {
	current.Store(in)
	return func() { current.CompareAndSwap(in, nil) }
}

// Armed reports whether a global injector is armed.
func Armed() bool { return current.Load() != nil }

// Hit triggers the globally armed injector's faults for a site; it is a
// single atomic load when nothing is armed.
func Hit(site string) error {
	if in := current.Load(); in != nil {
		return in.Hit(site)
	}
	return nil
}

// Corrupt applies the globally armed injector's corruption faults for a
// site; it returns b untouched when nothing is armed.
func Corrupt(site string, b []byte) []byte {
	if in := current.Load(); in != nil {
		return in.Corrupt(site, b)
	}
	return b
}
