package faultinject

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestRateZeroAndUnplannedSitesNeverFire(t *testing.T) {
	in := New(42,
		Fault{Site: "a", Kind: KindError, Rate: 0},
	)
	for i := 0; i < 100; i++ {
		if err := in.Hit("a"); err != nil {
			t.Fatalf("rate-0 fault fired: %v", err)
		}
		if err := in.Hit("unplanned"); err != nil {
			t.Fatalf("unplanned site fired: %v", err)
		}
	}
	if ev := in.Events(); len(ev) != 0 {
		t.Fatalf("events = %v, want none", ev)
	}
}

func TestRateOneAlwaysFiresAndWrapsSentinel(t *testing.T) {
	in := New(1, Fault{Site: "s", Kind: KindError, Rate: 1})
	for i := 0; i < 5; i++ {
		err := in.Hit("s")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
	}
	if ev := in.Events(); len(ev) != 5 || ev[4].Ordinal != 4 {
		t.Fatalf("events = %v, want 5 firings with ordinals 0..4", ev)
	}
}

func TestAtOrdinalsFireExactly(t *testing.T) {
	in := New(7, Fault{Site: "s", Kind: KindError, At: []uint64{0, 3}})
	var fired []int
	for i := 0; i < 6; i++ {
		if in.Hit("s") != nil {
			fired = append(fired, i)
		}
	}
	if !reflect.DeepEqual(fired, []int{0, 3}) {
		t.Fatalf("fired at %v, want [0 3]", fired)
	}
}

func TestRateScheduleIsSeedDeterministic(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(seed, Fault{Site: "s", Kind: KindError, Rate: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Hit("s") != nil
		}
		return out
	}
	a, b := schedule(5), schedule(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := schedule(6)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules (suspicious mixing)")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	// 200 trials at rate 0.3: expect ~60; anything far outside means the
	// scaled splitmix output is biased.
	if fired < 30 || fired > 90 {
		t.Fatalf("rate 0.3 fired %d/200 times", fired)
	}
}

func TestPanicKindPanicsWithDescriptiveValue(t *testing.T) {
	in := New(1, Fault{Site: "s", Kind: KindPanic, At: []uint64{0}})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic")
		}
		msg, ok := v.(string)
		if !ok || !strings.Contains(msg, "s") || !strings.Contains(msg, "injected panic") {
			t.Fatalf("panic value = %v", v)
		}
	}()
	_ = in.Hit("s")
}

func TestDelayKindSleeps(t *testing.T) {
	in := New(1, Fault{Site: "s", Kind: KindDelay, Delay: 30 * time.Millisecond, At: []uint64{0}})
	start := time.Now()
	if err := in.Hit("s"); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("hit returned after %v, want ≥ 30ms sleep", d)
	}
}

func TestCorruptFlipsOneDeterministicByte(t *testing.T) {
	orig := []byte("the quick brown fox jumps over the lazy dog")
	corrupt := func() []byte {
		in := New(9, Fault{Site: "s", Kind: KindCorrupt, Rate: 1})
		return in.Corrupt("s", append([]byte(nil), orig...))
	}
	a, b := corrupt(), corrupt()
	diff := 0
	for i := range orig {
		if a[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed corrupted different bytes")
	}
	// KindCorrupt never fires through Hit, and Hit kinds never fire
	// through Corrupt.
	in := New(9, Fault{Site: "s", Kind: KindCorrupt, Rate: 1})
	if err := in.Hit("s"); err != nil {
		t.Fatalf("corrupt fault fired through Hit: %v", err)
	}
	in2 := New(9, Fault{Site: "s", Kind: KindError, Rate: 1})
	if got := in2.Corrupt("s", append([]byte(nil), orig...)); !reflect.DeepEqual(got, orig) {
		t.Fatal("error fault fired through Corrupt")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Hit("s"); err != nil {
		t.Fatalf("nil Hit = %v", err)
	}
	b := []byte("abc")
	if got := in.Corrupt("s", b); !reflect.DeepEqual(got, b) {
		t.Fatal("nil Corrupt touched the payload")
	}
	if ev := in.Events(); ev != nil {
		t.Fatalf("nil Events = %v", ev)
	}
}

func TestGlobalArmDisarm(t *testing.T) {
	if Armed() {
		t.Fatal("injector armed at test start")
	}
	if err := Hit("s"); err != nil {
		t.Fatalf("disarmed Hit = %v", err)
	}
	in := New(1, Fault{Site: "s", Kind: KindError, Rate: 1})
	disarm := Arm(in)
	if !Armed() {
		t.Fatal("Armed() false after Arm")
	}
	if !errors.Is(Hit("s"), ErrInjected) {
		t.Fatal("armed Hit did not fire")
	}
	disarm()
	if Armed() {
		t.Fatal("still armed after disarm")
	}
	if err := Hit("s"); err != nil {
		t.Fatalf("Hit after disarm = %v", err)
	}
	// Disarming twice (or after another injector armed) must not clobber
	// someone else's arming.
	in2 := New(2, Fault{Site: "s", Kind: KindError, Rate: 1})
	disarm2 := Arm(in2)
	disarm() // stale
	if !Armed() {
		t.Fatal("stale disarm removed a newer injector")
	}
	disarm2()
}
