package collabscope

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"collabscope/internal/ann"
	"collabscope/internal/core"
	"collabscope/internal/datasets"
	"collabscope/internal/embed"
	"collabscope/internal/encoder"
	"collabscope/internal/enrich"
	"collabscope/internal/exchange"
	"collabscope/internal/integrate"
	"collabscope/internal/linalg"
	"collabscope/internal/match"
	"collabscope/internal/obs"
	"collabscope/internal/outlier"
	"collabscope/internal/parallel"
	"collabscope/internal/schema"
	"collabscope/internal/scoping"
)

// Re-exported schema model types. The schema package is internal; these
// aliases form the public surface.
type (
	// Schema is a named set of tables.
	Schema = schema.Schema
	// Table is a named set of attributes.
	Table = schema.Table
	// Attribute is a column described by metadata only.
	Attribute = schema.Attribute
	// ElementID identifies a table or attribute across schemas.
	ElementID = schema.ElementID
	// Linkage is an annotated semantic congruence between two elements.
	Linkage = schema.Linkage
	// GroundTruth is an annotated linkage set L(S).
	GroundTruth = schema.GroundTruth
	// SignatureSet couples element identifiers with signature vectors.
	SignatureSet = embed.SignatureSet
	// Encoder transforms element text into fixed-size signatures.
	Encoder = embed.Encoder
	// Detector is an outlier detection algorithm for global scoping.
	Detector = outlier.Detector
	// Matcher generates linkage candidates between two schemas.
	Matcher = match.Matcher
	// Pair is a generated linkage candidate.
	Pair = match.Pair
	// MatchEval holds PQ / PC / F1 / RR match quality.
	MatchEval = match.Eval
	// Model is a local collaborative-scoping encoder-decoder.
	Model = core.Model
	// Dataset is a named matching scenario with ground truth.
	Dataset = datasets.Dataset
)

// Data type and constraint constants of the schema model.
const (
	TypeText      = schema.TypeText
	TypeNumber    = schema.TypeNumber
	TypeDecimal   = schema.TypeDecimal
	TypeDate      = schema.TypeDate
	TypeTimestamp = schema.TypeTimestamp
	TypeBoolean   = schema.TypeBoolean
	TypeBinary    = schema.TypeBinary
	TypeUnknown   = schema.TypeUnknown

	PrimaryKey   = schema.PrimaryKey
	ForeignKey   = schema.ForeignKey
	NoConstraint = schema.NoConstraint

	InterIdentical = schema.InterIdentical
	InterSubTyped  = schema.InterSubTyped
)

// Failure taxonomy (DESIGN.md §9). Every pipeline stage wraps its failures
// around one of these sentinels, naming the offending schema and element,
// so callers can classify with errors.Is: bad input data (ErrNonFinite),
// numerically hopeless input (ErrSVDNoConvergence), unusable training
// output (ErrDegenerateModel), or a bug in stage code (PanicError).
var (
	// ErrNonFinite reports NaN/Inf contamination in signatures or matrices,
	// detected at pipeline ingress (signature encoding) and before every
	// model fit.
	ErrNonFinite = linalg.ErrNonFinite
	// ErrSVDNoConvergence reports that the Jacobi SVD exhausted its sweep
	// budget without converging, instead of silently returning a partial
	// decomposition.
	ErrSVDNoConvergence = linalg.ErrSVDNoConvergence
	// ErrDegenerateModel reports that training produced a model that cannot
	// assess anything (no components, or a non-finite linkability range).
	ErrDegenerateModel = core.ErrDegenerateModel
)

// PanicError reports a panic recovered inside a parallel pipeline stage.
// It identifies the offending element index and carries the panic value and
// stack; one malformed element fails one call, never the process.
type PanicError = parallel.PanicError

// ExplainError returns a one-line operator hint classifying a pipeline
// failure against the taxonomy, or "" when the error matches no class. The
// CLIs print it under the raw error.
func ExplainError(err error) string {
	var pe *PanicError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &pe):
		return fmt.Sprintf("an element handler panicked on item %d — a bug in stage code, not bad input; the error carries the stack", pe.Index)
	case errors.Is(err, ErrNonFinite):
		return "a signature contains NaN/Inf — the error names the schema element and dimension; check the encoder input"
	case errors.Is(err, ErrDimMismatch):
		return "the encoder returned signatures of the wrong shape — the error names the element; check the backend's dimension against WithDimension"
	case errors.Is(err, ErrSVDNoConvergence):
		return "the SVD exhausted its sweep budget — the input matrix is numerically ill-conditioned"
	case errors.Is(err, ErrDegenerateModel):
		return "training produced an unusable model — the schema's signatures may be constant, empty, or contaminated"
	}
	return ""
}

// TableID returns the element identifier of a table.
func TableID(schemaName, table string) ElementID { return schema.TableID(schemaName, table) }

// AttributeID returns the element identifier of an attribute.
func AttributeID(schemaName, table, attr string) ElementID {
	return schema.AttributeID(schemaName, table, attr)
}

// NewGroundTruth returns an empty annotated linkage set.
func NewGroundTruth() *GroundTruth { return schema.NewGroundTruth() }

// ParseDDL parses CREATE TABLE statements into a schema.
func ParseDDL(name, ddl string) (*Schema, error) { return schema.ParseDDL(name, ddl) }

// ReadSchemaJSON decodes and validates a schema from JSON.
func ReadSchemaJSON(r io.Reader) (*Schema, error) { return schema.ReadJSON(r) }

// ReadGroundTruthJSON decodes an annotated linkage set from JSON.
func ReadGroundTruthJSON(r io.Reader) (*GroundTruth, error) {
	return schema.ReadGroundTruthJSON(r)
}

// ReadModelJSON deserialises a local model exchanged by another schema.
// Models serialise with (*Model).WriteJSON; only the mean, principal
// components, and linkability range travel — never schema elements.
func ReadModelJSON(r io.Reader) (*Model, error) { return core.ReadModelJSON(r) }

// Pipeline bundles the encoder shared by all schemas — the globally agreed
// language model E of collaborative scoping phase (I) — together with the
// worker-pool parallelism every stage fans out on.
//
// All stages are deterministic: the same inputs produce bit-identical
// results for any parallelism setting. Each method has a Context variant
// (CollaborativeScopeContext, GlobalScopeContext, MatchContext, …) that
// supports cancellation mid-run; the plain methods are thin
// context.Background() wrappers around them.
type Pipeline struct {
	enc     embed.Encoder
	workers int

	// Encoder backend selection (see encoders.go). A spec set with
	// WithEncoderBackend is resolved once in New, after all options, so it
	// composes with WithDimension/WithMetrics/WithRetryPolicy regardless of
	// order; a resolution failure is deferred into encErr and surfaces on
	// the first encode.
	encSpec    string
	hasEncSpec bool
	encDim     int
	encCache   string
	encErr     error

	// Enrichment stage between schema load and encoding (see encoders.go).
	enrichers []enrich.Enricher

	// Observability (see WithMetrics / WithTraceLog). Both nil by default:
	// instrumentation is zero-cost when disabled.
	reg   *obs.Registry
	trace *obs.TraceLog

	// Remote-exchange configuration (see remote.go).
	httpClient *http.Client
	retry      RetryPolicy
	hasRetry   bool
	exchOpts   []exchange.ClientOption
	exchOnce   sync.Once
	exch       *exchange.Client
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithEncoder replaces the default deterministic hash encoder.
func WithEncoder(e Encoder) Option {
	return func(p *Pipeline) { p.enc = e }
}

// WithDimension sets the signature dimensionality of the default encoder
// (768, the Sentence-BERT size of the paper, if unset). A backend chosen
// with WithEncoderBackend inherits the dimension in any option order.
func WithDimension(dim int) Option {
	return func(p *Pipeline) {
		p.encDim = dim
		p.enc = embed.NewHashEncoder(embed.WithDim(dim))
	}
}

// WithParallelism sets the worker count used by every pipeline stage
// (encoding, matching, training, assessment). n ≤ 0 restores the default,
// runtime.GOMAXPROCS(0). Results are identical for any setting; n only
// controls how many cores the work spreads over.
func WithParallelism(n int) Option {
	return func(p *Pipeline) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		p.workers = n
	}
}

// Metrics is a set of named instruments — atomic counters, gauges, and
// fixed-bucket latency histograms — that every instrumented layer reports
// into: pipeline stage spans, the worker pool, and the model-exchange
// client and server. Create one with NewMetrics, attach it with
// WithMetrics, and read it back with Pipeline.Metrics().Snapshot().
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of a Metrics registry. It
// marshals to JSON (the /metrics wire format of model hubs) and
// pretty-prints with Fprint — what `collabscope stats -metrics` shows.
type MetricsSnapshot = obs.Snapshot

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// ReadMetricsSnapshotJSON decodes a snapshot produced by
// MetricsSnapshot.WriteJSON or served by a hub's /metrics endpoint.
func ReadMetricsSnapshotJSON(r io.Reader) (MetricsSnapshot, error) {
	return obs.ReadSnapshotJSON(r)
}

// WithMetrics attaches a metrics registry to the pipeline. Every stage then
// records spans ("span.pipeline.scope", "span.core.assess", …), the worker
// pool its queue-wait/task latencies and panic count, and the remote
// exchange its per-peer request latencies, retries, and 304 cache hits.
// WithMetrics(nil) — the default — disables instrumentation entirely; the
// disabled path is a nil check that allocates nothing (pinned by
// TestDisabledPathAllocations and the obs benchmarks).
func WithMetrics(m *Metrics) Option {
	return func(p *Pipeline) { p.reg = m }
}

// WithTraceLog streams one JSON line per completed pipeline span to w
// (element counts included), nested spans carrying their depth. A nil
// writer disables tracing. Tracing works with or without WithMetrics.
func WithTraceLog(w io.Writer) Option {
	return func(p *Pipeline) { p.trace = obs.NewTraceLog(w) }
}

// Metrics returns the registry attached with WithMetrics (nil when
// instrumentation is disabled; a nil registry is safe to Snapshot).
func (p *Pipeline) Metrics() *Metrics { return p.reg }

// obsContext arms the context with the pipeline's registry and trace sink.
// Without instrumentation the context passes through untouched, and a
// context already carrying a scope (a nested pipeline call) keeps its span
// chain.
func (p *Pipeline) obsContext(ctx context.Context) context.Context {
	if p.reg == nil && p.trace == nil {
		return ctx
	}
	return obs.EnsureContext(ctx, p.reg, p.trace)
}

// New returns a pipeline with the default 768-dimensional encoder and
// GOMAXPROCS-wide parallelism.
func New(opts ...Option) *Pipeline {
	p := &Pipeline{enc: embed.NewHashEncoder(), workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(p)
	}
	if p.hasEncSpec {
		cfg := encoder.Config{
			Dim:        p.encDim,
			CachePath:  p.encCache,
			HTTPClient: p.httpClient,
			Metrics:    p.reg,
		}
		if p.hasRetry {
			cfg.Retry = p.retry
		}
		enc, err := encoder.New(p.encSpec, cfg)
		if err != nil {
			p.encErr = err
		} else {
			p.enc = enc
		}
	}
	return p
}

// Encoder returns the pipeline's signature encoder.
func (p *Pipeline) Encoder() Encoder { return p.enc }

// Parallelism returns the pipeline's worker count.
func (p *Pipeline) Parallelism() int { return p.workers }

// Encode serialises and encodes every element of a schema.
func (p *Pipeline) Encode(s *Schema) *SignatureSet {
	set, _ := p.EncodeContext(context.Background(), s)
	return set
}

// EncodeContext is Encode with cancellation. With enrichers attached
// (WithEnrichers), each schema's elements pass through the enrichment
// stage before encoding.
func (p *Pipeline) EncodeContext(ctx context.Context, s *Schema) (*SignatureSet, error) {
	if p.encErr != nil {
		return nil, p.encErr
	}
	ctx = p.obsContext(ctx)
	if len(p.enrichers) == 0 {
		return embed.EncodeSchemaContext(ctx, p.workers, p.enc, s)
	}
	return embed.EncodeElementsContext(ctx, p.workers, p.enc, enrich.Schema(ctx, p.enrichers, s))
}

// EncodeAll encodes each schema independently with the shared encoder.
func (p *Pipeline) EncodeAll(schemas []*Schema) []*SignatureSet {
	sets, _ := p.EncodeAllContext(context.Background(), schemas)
	return sets
}

// EncodeAllContext is EncodeAll with cancellation. Schemas encode
// sequentially while their elements fan out (or batch to a remote
// backend), keeping the worker pool saturated without nesting pools.
func (p *Pipeline) EncodeAllContext(ctx context.Context, schemas []*Schema) ([]*SignatureSet, error) {
	if p.encErr != nil {
		return nil, p.encErr
	}
	ctx = p.obsContext(ctx)
	out := make([]*SignatureSet, len(schemas))
	for i, s := range schemas {
		set, err := p.EncodeContext(ctx, s)
		if err != nil {
			return nil, err
		}
		out[i] = set
	}
	return out, nil
}

// ScopeResult is the outcome of a scoping run.
type ScopeResult struct {
	// Keep maps every element to its linkability verdict.
	Keep map[ElementID]bool
	// Streamlined holds the pruned schemas S′, aligned with the input.
	Streamlined []*Schema
	// Kept and Pruned count the verdicts.
	Kept, Pruned int
}

func newScopeResult(schemas []*Schema, keep map[ElementID]bool) *ScopeResult {
	res := &ScopeResult{Keep: keep}
	for _, s := range schemas {
		res.Streamlined = append(res.Streamlined, s.Subset(keep))
	}
	for _, ok := range keep {
		if ok {
			res.Kept++
		} else {
			res.Pruned++
		}
	}
	return res
}

// CollaborativeScope runs the paper's contribution end-to-end: local
// signatures, local self-supervised models at the global explained variance
// v ∈ (0, 1], and the distributed linkability assessment. It returns the
// linkability verdicts and the streamlined schemas.
func (p *Pipeline) CollaborativeScope(schemas []*Schema, v float64) (*ScopeResult, error) {
	return p.CollaborativeScopeContext(context.Background(), schemas, v)
}

// CollaborativeScopeContext is CollaborativeScope with cancellation:
// encoding, per-schema training, and the distributed assessment all stop
// promptly once ctx is done, returning ctx.Err().
func (p *Pipeline) CollaborativeScopeContext(ctx context.Context, schemas []*Schema, v float64) (*ScopeResult, error) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.scope")
	sp.Annotate("schemas", int64(len(schemas)))
	defer sp.End()
	sets, err := p.EncodeAllContext(ctx, schemas)
	if err != nil {
		return nil, err
	}
	scoper, err := core.NewScoperContext(ctx, p.workers, sets, core.AssessConfig{})
	if err != nil {
		return nil, err
	}
	keep, err := scoper.ScopeContext(ctx, v)
	if err != nil {
		return nil, err
	}
	return newScopeResult(schemas, keep), nil
}

// SuggestVariance proposes an explained-variance setting label-free, by
// locating the saturation cliff of the kept-count curve over the grid (an
// extension; the paper leaves the ideal v scenario-dependent). A nil grid
// uses DefaultVarianceGrid.
func (p *Pipeline) SuggestVariance(schemas []*Schema, grid []float64) (float64, error) {
	return p.SuggestVarianceContext(context.Background(), schemas, grid)
}

// SuggestVarianceContext is SuggestVariance with cancellation; the grid
// points fan out over the worker pool.
func (p *Pipeline) SuggestVarianceContext(ctx context.Context, schemas []*Schema, grid []float64) (float64, error) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.sweep")
	sp.Annotate("schemas", int64(len(schemas)))
	defer sp.End()
	sets, err := p.EncodeAllContext(ctx, schemas)
	if err != nil {
		return 0, err
	}
	scoper, err := core.NewScoperContext(ctx, p.workers, sets, core.AssessConfig{})
	if err != nil {
		return 0, err
	}
	if grid == nil {
		grid = DefaultVarianceGrid()
	}
	return scoper.SuggestVarianceContext(ctx, grid)
}

// DefaultVarianceGrid returns the explained-variance grid SuggestVariance
// sweeps when none is given: 1.00, 0.95, … 0.05 in exact 0.05 steps, with a
// final 0.01 probe. Points are generated from integer steps, so each value
// is the float64 nearest its decimal (no accumulated subtraction drift).
func DefaultVarianceGrid() []float64 {
	grid := make([]float64, 0, 21)
	for i := 20; i >= 1; i-- {
		grid = append(grid, float64(i)/20)
	}
	return append(grid, 0.01)
}

// TrainModel runs Algorithm 1 for a single schema, returning the local
// model that can be exchanged with other parties.
func (p *Pipeline) TrainModel(s *Schema, v float64) (*Model, error) {
	return p.TrainModelContext(context.Background(), s, v)
}

// TrainModelContext is TrainModel with cancellation.
func (p *Pipeline) TrainModelContext(ctx context.Context, s *Schema, v float64) (*Model, error) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.train")
	defer sp.End()
	set, err := p.EncodeContext(ctx, s)
	if err != nil {
		return nil, err
	}
	sp.Annotate("elements", int64(set.Len()))
	return core.Train(set, v)
}

// Assess runs Algorithm 2 for a single schema against foreign models,
// returning the linkability verdict for each local element.
func (p *Pipeline) Assess(s *Schema, foreign []*Model) map[ElementID]bool {
	verdicts, _ := p.AssessContext(context.Background(), s, foreign)
	return verdicts
}

// AssessContext is Assess with cancellation; the element-by-foreign-model
// passes fan out over the worker pool.
func (p *Pipeline) AssessContext(ctx context.Context, s *Schema, foreign []*Model) (map[ElementID]bool, error) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.assess")
	sp.Annotate("models", int64(len(foreign)))
	defer sp.End()
	set, err := p.EncodeContext(ctx, s)
	if err != nil {
		return nil, err
	}
	return core.AssessContext(ctx, p.workers, set, foreign, core.AssessConfig{})
}

// GlobalScope runs the prior-work scoping baseline: rank the unified
// signature set with the detector and keep the fraction keep ∈ [0, 1] with
// the lowest outlier scores.
func (p *Pipeline) GlobalScope(schemas []*Schema, det Detector, keep float64) (*ScopeResult, error) {
	return p.GlobalScopeContext(context.Background(), schemas, det, keep)
}

// GlobalScopeContext is GlobalScope with cancellation. Detectors that
// implement context-aware scoring (LOF, kNN, Mahalanobis, the autoencoder
// ensemble) honour ctx mid-scan and fan out over the worker pool.
func (p *Pipeline) GlobalScopeContext(ctx context.Context, schemas []*Schema, det Detector, keep float64) (*ScopeResult, error) {
	if det == nil {
		return nil, fmt.Errorf("collabscope: nil detector")
	}
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.globalscope")
	sp.Annotate("schemas", int64(len(schemas)))
	defer sp.End()
	sets, err := p.EncodeAllContext(ctx, schemas)
	if err != nil {
		return nil, err
	}
	union := embed.Union(sets)
	if union.Len() == 0 {
		return nil, fmt.Errorf("collabscope: no schema elements to scope")
	}
	ranking, err := scoping.RankContext(ctx, p.workers, det, union)
	if err != nil {
		return nil, err
	}
	return newScopeResult(schemas, completeKeep(union, ranking.Scope(keep))), nil
}

// completeKeep turns a kept-only set into a full verdict map over all
// elements.
func completeKeep(union *SignatureSet, kept map[ElementID]bool) map[ElementID]bool {
	out := make(map[ElementID]bool, union.Len())
	for _, id := range union.IDs {
		out[id] = kept[id]
	}
	return out
}

// Detector constructors for global scoping.

// NewZScoreDetector returns the Z-score baseline.
func NewZScoreDetector() Detector { return outlier.ZScore{} }

// NewLOFDetector returns the Local-Outlier-Factor baseline with n
// neighbours (20 if n ≤ 0, the scikit-learn default used in the paper).
func NewLOFDetector(n int) Detector { return outlier.LOF{Neighbors: n} }

// NewPCADetector returns the PCA-reconstruction baseline at the given
// explained variance.
func NewPCADetector(variance float64) Detector { return outlier.PCA{Variance: variance} }

// NewAutoencoderDetector returns the neural autoencoder baseline with an
// ensemble of the given size training for the given epochs.
func NewAutoencoderDetector(models, epochs int, seed int64) Detector {
	return outlier.Autoencoder{Models: models, Epochs: epochs, Seed: seed}
}

// NewKNNDetector returns the k-NN mean-distance detector (extension beyond
// the paper's baselines).
func NewKNNDetector(k int) Detector { return outlier.KNNDistance{K: k} }

// NewMahalanobisDetector returns the shrinkage-regularised Mahalanobis
// detector (extension).
func NewMahalanobisDetector() Detector { return outlier.Mahalanobis{} }

// NewIsolationForestDetector returns an Isolation Forest (Liu et al. 2008)
// detector (extension).
func NewIsolationForestDetector(trees int, seed int64) Detector {
	return outlier.IsolationForest{Trees: trees, Seed: seed}
}

// Matcher constructors for the ablation matchers.

// NewSimMatcher returns the cosine-threshold SIM matcher.
func NewSimMatcher(threshold float64) Matcher { return match.Sim{Threshold: threshold} }

// NewClusterMatcher returns the k-means co-membership CLUSTER matcher.
func NewClusterMatcher(k int, seed int64) Matcher { return match.Cluster{K: k, Seed: seed} }

// NewLSHMatcher returns the exact top-k nearest-neighbour matcher (the
// paper's LSH, FAISS-IndexFlatL2 style).
func NewLSHMatcher(k int) Matcher { return match.LSH{K: k} }

// NewApproxLSHMatcher returns the genuine random-hyperplane LSH matcher.
func NewApproxLSHMatcher(k int, seed int64) Matcher {
	return match.LSH{K: k, Approximate: true, Seed: seed}
}

// IndexKind names an ANN index backend of the LSH matcher family.
type IndexKind = ann.Kind

// IndexConfig selects an ANN index backend and its parameters for the
// top-k matcher and the blocking stage: the kind plus the union of the
// backends' knobs (Tables/Bits for lsh, M/EfConstruction/EfSearch for
// hnsw, NLists/NProbe for ivf) and the construction seed. The zero value
// is the exact flat scan.
type IndexConfig = match.IndexConfig

// Index backend names accepted in IndexConfig.Kind.
const (
	// IndexFlat is the exact brute-force scan (default).
	IndexFlat = ann.KindFlat
	// IndexLSH is the random-hyperplane LSH index.
	IndexLSH = ann.KindLSH
	// IndexHNSW is the hierarchical navigable small-world graph index.
	IndexHNSW = ann.KindHNSW
	// IndexIVF is the inverted-file (k-means coarse quantizer) index.
	IndexIVF = ann.KindIVF
)

// ParseIndexKind resolves an index backend name (case-insensitive; ""
// means flat).
func ParseIndexKind(s string) (IndexKind, error) { return ann.ParseKind(s) }

// NewIndexedLSHMatcher returns the top-k nearest-neighbour matcher backed
// by the configured ANN index. The config is validated here so a bad
// parameterisation fails at construction instead of silently producing no
// pairs at match time.
func NewIndexedLSHMatcher(k int, cfg IndexConfig) (Matcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return match.LSH{K: k, Index: cfg}, nil
}

// NewNameMatcher returns a purely lexical matcher (max of normalised
// Levenshtein and token-trigram Jaccard) — the string-similarity baseline
// whose labeling conflicts the paper discusses in §2.2.
func NewNameMatcher(threshold float64) Matcher { return match.NameMatcher{Threshold: threshold} }

// NewFloodingMatcher returns a Similarity Flooding matcher (Melnik et al.,
// ICDE 2002) with relative selection at the given threshold.
func NewFloodingMatcher(threshold float64) Matcher { return match.Flooding{Threshold: threshold} }

// NewCompositeMatcher returns a COMA-style aggregate matcher combining
// lexical name similarity with semantic signature similarity.
func NewCompositeMatcher(threshold float64) Matcher { return match.Composite{Threshold: threshold} }

// NewHACMatcher returns a hierarchical-agglomerative-clustering matcher
// (average linkage) with the given merge-distance cutoff — the multi-source
// strategy of Saeedi et al. cited in the paper; it needs no cardinality.
func NewHACMatcher(cutoff float64) Matcher { return match.HACMatcher{Cutoff: cutoff} }

// Match runs a matcher over every pair of schemas and returns the
// deduplicated union of linkage candidates.
func (p *Pipeline) Match(m Matcher, schemas []*Schema) []Pair {
	pairs, _ := p.MatchContext(context.Background(), m, schemas)
	return pairs
}

// MatchContext is Match with cancellation; the O(k²) schema pairs fan out
// over the worker pool and the candidate union is folded in enumeration
// order, so the pair set is identical for any parallelism setting.
func (p *Pipeline) MatchContext(ctx context.Context, m Matcher, schemas []*Schema) ([]Pair, error) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.match")
	sp.Annotate("schemas", int64(len(schemas)))
	defer sp.End()
	sets, err := p.EncodeAllContext(ctx, schemas)
	if err != nil {
		return nil, err
	}
	return match.MatchAllContext(ctx, p.workers, m, sets)
}

// MatchHolistic clusters the union of ALL schemas once per element kind
// (He & Chang's holistic strategy) and links cross-schema co-members — one
// k-means run instead of one per schema pair.
func (p *Pipeline) MatchHolistic(k int, seed int64, schemas []*Schema) []Pair {
	return match.Holistic(k, seed, p.EncodeAll(schemas))
}

// MatchHolisticAuto is MatchHolistic with the cardinality self-tuned by the
// silhouette coefficient over candidate k values (the ALITE approach).
func (p *Pipeline) MatchHolisticAuto(candidates []int, seed int64, schemas []*Schema) []Pair {
	return match.HolisticAuto(candidates, seed, p.EncodeAll(schemas))
}

// EvaluateMatch scores generated pairs against ground truth; the Reduction
// Ratio denominator is the same-kind Cartesian product of the ORIGINAL
// schemas.
func EvaluateMatch(pairs []Pair, truth *GroundTruth, original []*Schema) MatchEval {
	return match.Evaluate(pairs, truth, match.Cartesian(original))
}

// Integration (downstream of matching): mediated schemas and SQL views.

type (
	// Mediated is a global schema derived from linkage clusters.
	Mediated = integrate.Mediated
	// MediatedTable is one global table of a mediated schema.
	MediatedTable = integrate.MediatedTable
)

// BuildMediated clusters linkage pairs into connected components and
// derives a mediated global schema over the source schemas.
func BuildMediated(schemas []*Schema, pairs []Pair) *Mediated {
	return integrate.Build(schemas, pairs)
}

// UnionView renders a SQL view skeleton (UNION ALL over renamed
// projections) materialising one mediated table.
func UnionView(mt MediatedTable) string { return integrate.UnionView(mt) }

// Bundled datasets of the paper's evaluation.

// DatasetOC3 returns the domain-specific Order-Customer scenario (Table 2).
func DatasetOC3() *Dataset { return datasets.OC3() }

// DatasetOC3FO returns the heterogeneous scenario with the Formula One
// schema added (Table 2).
func DatasetOC3FO() *Dataset { return datasets.OC3FO() }

// DatasetFigure1 returns the four-schema toy scenario of Figure 1.
func DatasetFigure1() *Dataset { return datasets.Figure1() }

// DatasetSourceToTarget returns the two-schema Oracle→MySQL scenario
// (source-to-target matching, the paper's closing applicability claim).
func DatasetSourceToTarget() *Dataset { return datasets.SourceToTarget() }
