// Observability demonstrates the pipeline's instrumentation layer end to
// end: WithMetrics collects counters, gauges, and latency histograms from
// every stage (encoding, the worker pool, training, assessment), and
// WithTraceLog streams one JSONL event per completed span — nested across
// goroutines — to any io.Writer.
//
// The run scopes the paper's Figure-1 schemas twice, once instrumented and
// once plain, and shows the metrics snapshot (pretty-printed and as the
// JSON that a hub's /metrics endpoint serves and `collabscope stats
// -metrics` renders), the first trace events with their nesting depth, and
// that instrumentation never changes results — both runs agree.
//
//	go run ./examples/observability
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strings"

	"collabscope"
)

func main() {
	fig := collabscope.DatasetFigure1()

	// An instrumented pipeline: metrics registry + JSONL trace log.
	metrics := collabscope.NewMetrics()
	var trace bytes.Buffer
	pipe := collabscope.New(
		collabscope.WithDimension(384),
		collabscope.WithMetrics(metrics),
		collabscope.WithTraceLog(&trace),
	)
	res, err := pipe.CollaborativeScope(fig.Schemas, 0.3)
	check(err)
	fmt.Printf("scoped %d schemas: kept %d elements, pruned %d\n\n",
		len(fig.Schemas), res.Kept, res.Pruned)

	// 1. The metrics snapshot. The same data is served by a model hub at
	// GET /metrics and rendered by `collabscope stats -metrics <url|file>`.
	fmt.Println("--- metrics snapshot ---")
	snap := metrics.Snapshot()
	snap.Fprint(os.Stdout)

	var js bytes.Buffer
	check(snap.WriteJSON(&js))
	fmt.Printf("\n(as JSON: %d bytes; try `collabscope stats -metrics <file>` on it)\n", js.Len())

	// 2. The trace log: one JSON line per completed span, innermost first,
	// with goroutine-crossing nesting tracked by depth.
	fmt.Println("\n--- first trace events ---")
	sc := bufio.NewScanner(&trace)
	for i := 0; i < 8 && sc.Scan(); i++ {
		fmt.Println("  " + sc.Text())
	}

	// 3. Instrumentation is observation only: an uninstrumented pipeline
	// (the zero-cost fast path — no registry, no allocations) produces
	// identical verdicts.
	plain, err := collabscope.New(collabscope.WithDimension(384)).
		CollaborativeScope(fig.Schemas, 0.3)
	check(err)
	if plain.Kept != res.Kept || plain.Pruned != res.Pruned {
		fmt.Println("ERROR: instrumented and plain runs diverged")
		os.Exit(1)
	}
	fmt.Println("\ninstrumented and uninstrumented runs produced identical verdicts")

	// The snapshot is also inspectable programmatically.
	spans := 0
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "span.") {
			spans++
		}
	}
	fmt.Printf("worker pool processed %d items across %d recorded stage spans\n",
		snap.Counters["parallel.items"], spans)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
