// Entityresolution demonstrates the paper's future-work direction (§5):
// collaborative scoping applied to records instead of schema elements. Two
// sources share a subset of perturbed duplicate person records; one source
// also carries records of an entirely different entity type. Scoping prunes
// the unmatchable records before blocking, shrinking the candidate space.
//
//	go run ./examples/entityresolution
package main

import (
	"fmt"
	"os"

	"collabscope"
	"collabscope/er"
)

func main() {
	a, b, truth, err := er.GenerateSources(er.GenConfig{
		Shared:     30, // person entities present in both sources (perturbed)
		NoiseA:     10, // CRM-only persons
		NoiseB:     10, // Billing-only persons
		UnrelatedB: 15, // book records in Billing — a different entity type
		Seed:       4,
	})
	check(err)
	sources := []er.Source{a, b}
	fmt.Printf("%s: %d records, %s: %d records, %d true duplicate pairs\n\n",
		a.Name, len(a.Records), b.Name, len(b.Records), truth.Len())

	enc := collabscope.New(collabscope.WithDimension(384)).Encoder()

	// Baseline: block everything.
	full, err := er.BlockTopK(enc, sources, nil, 3)
	check(err)
	ef := er.Evaluate(full, truth)

	// Scope first: each source trains on its own records and assesses
	// against the other's model. Record signatures are value-dominated,
	// so the variance target sits lower than for schema metadata.
	keep, err := er.Scope(enc, sources, 0.3)
	check(err)
	var pruned, booksPruned, booksTotal int
	for id, kept := range keep {
		if id.Table == "book" {
			booksTotal++
			if !kept {
				booksPruned++
			}
		}
		if !kept {
			pruned++
		}
	}
	scoped, err := er.BlockTopK(enc, sources, keep, 3)
	check(err)
	es := er.Evaluate(scoped, truth)

	fmt.Printf("scoping pruned %d of %d records — including %d of %d unrelated book records\n\n",
		pruned, len(keep), booksPruned, booksTotal)
	fmt.Printf("%-12s %10s %8s %8s\n", "blocking", "candidates", "PQ", "PC")
	fmt.Printf("%-12s %10d %8.3f %8.3f\n", "full", ef.Candidates, ef.PQ, ef.PC)
	fmt.Printf("%-12s %10d %8.3f %8.3f\n", "scoped", es.Candidates, es.PQ, es.PC)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
