// Quickstart runs collaborative scoping on the paper's Figure-1 toy
// scenario: four tiny schemas — three about customers and orders, one about
// Formula One cars — where only 15 of 24 elements are linkable.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"collabscope"
)

func main() {
	// The bundled Figure-1 dataset: S1 (CLIENT), S2 (CUSTOMER, SHIPMENTS),
	// S3 (BUYER), and the unrelated S4 (CAR).
	fig := collabscope.DatasetFigure1()

	pipe := collabscope.New()

	// Phase I-III of collaborative scoping in one call: every schema
	// trains a local encoder-decoder at the shared explained variance and
	// assesses its elements against the other schemas' models.
	// Tiny schemas (4-5 elements) support only tiny PCA subspaces, so the
	// shared variance must be low; real schemas (see the multisource
	// example) work well at v ∈ [0.6, 0.95].
	const variance = 0.3
	res, err := pipe.CollaborativeScope(fig.Schemas, variance)
	if err != nil {
		panic(err)
	}

	fmt.Printf("collaborative scoping at v=%.2f kept %d of %d elements\n\n",
		variance, res.Kept, res.Kept+res.Pruned)
	for i, s := range fig.Schemas {
		fmt.Printf("%s: %d -> %d elements\n", s.Name, s.NumElements(),
			res.Streamlined[i].NumElements())
		for _, id := range s.ElementIDs() {
			if !res.Keep[id] {
				fmt.Printf("  pruned: %s\n", id)
			}
		}
	}

	// Matching the streamlined schemas produces far fewer false linkages
	// than matching the originals.
	matcher := collabscope.NewLSHMatcher(2)
	sota := collabscope.EvaluateMatch(pipe.Match(matcher, fig.Schemas), fig.Truth, fig.Schemas)
	scoped := collabscope.EvaluateMatch(pipe.Match(matcher, res.Streamlined), fig.Truth, fig.Schemas)

	fmt.Printf("\nmatching with %s:\n", "LSH(2)")
	fmt.Printf("  original schemas:    PQ=%.2f PC=%.2f F1=%.2f RR=%.2f\n",
		sota.PQ, sota.PC, sota.F1, sota.RR)
	fmt.Printf("  streamlined schemas: PQ=%.2f PC=%.2f F1=%.2f RR=%.2f\n",
		scoped.PQ, scoped.PC, scoped.F1, scoped.RR)
}
