// Heterogeneous demonstrates the paper's headline result on the OC3-FO
// scenario: the three Order-Customer schemas joined by the completely
// unrelated Formula One schema (263 % unlinkable overhead). Collaborative
// scoping prunes the unrelated schema ahead of matching, boosting every
// matcher's pair quality while keeping completeness near the unscoped
// baseline.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"

	"collabscope"
)

func main() {
	ocfo := collabscope.DatasetOC3FO()
	pipe := collabscope.New()

	matchers := []collabscope.Matcher{
		collabscope.NewSimMatcher(0.8),
		collabscope.NewClusterMatcher(20, 1),
		collabscope.NewLSHMatcher(1),
	}

	fmt.Println("OC3-FO: 287 elements, 79 linkable (Formula One contributes 127 unlinkable)")
	fmt.Println()

	// How much of the Formula One schema survives scoping?
	const variance = 0.85
	res, err := pipe.CollaborativeScope(ocfo.Schemas, variance)
	if err != nil {
		panic(err)
	}
	var foKept, foTotal int
	for id, kept := range res.Keep {
		if id.Schema == "FormulaOne" {
			foTotal++
			if kept {
				foKept++
			}
		}
	}
	fmt.Printf("collaborative scoping v=%.2f: kept %d of %d elements overall,\n",
		variance, res.Kept, res.Kept+res.Pruned)
	fmt.Printf("only %d of %d Formula One elements survive\n\n", foKept, foTotal)

	// Ablation: each matcher on the original vs streamlined schemas.
	fmt.Printf("%-12s %-12s %7s %7s %7s %7s %7s\n",
		"matcher", "input", "PQ", "PC", "F1", "RR", "pairs")
	for _, m := range matchers {
		sota := collabscope.EvaluateMatch(pipe.Match(m, ocfo.Schemas), ocfo.Truth, ocfo.Schemas)
		scoped := collabscope.EvaluateMatch(pipe.Match(m, res.Streamlined), ocfo.Truth, ocfo.Schemas)
		printEval(m.Name(), "original", sota)
		printEval(m.Name(), "streamlined", scoped)
	}
}

func printEval(matcher, input string, e collabscope.MatchEval) {
	fmt.Printf("%-12s %-12s %7.3f %7.3f %7.3f %7.3f %7d\n",
		matcher, input, e.PQ, e.PC, e.F1, e.RR, e.Generated)
}
