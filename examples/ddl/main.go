// DDL shows the file-level workflow: parse vendor CREATE TABLE scripts,
// exchange locally trained models instead of schema contents, assess
// linkability per schema, and emit the streamlined schemas as JSON.
//
//	go run ./examples/ddl
package main

import (
	"fmt"
	"os"

	"collabscope"
)

const crmDDL = `
-- A small CRM system.
CREATE TABLE client (
  cid     INT PRIMARY KEY,
  name    VARCHAR(100),
  address VARCHAR(200),
  phone   VARCHAR(20)
);
CREATE TABLE orders (
  order_id   INT PRIMARY KEY,
  cid        INT REFERENCES client (cid),
  order_date DATE,
  status     VARCHAR(10)
);`

const shopDDL = `
/* An online shop. */
CREATE TABLE customer (
  customer_id INT PRIMARY KEY,
  first_name  VARCHAR(50),
  last_name   VARCHAR(50),
  city        VARCHAR(50),
  dob         DATE
);
CREATE TABLE purchase (
  purchase_id   INT PRIMARY KEY,
  customer_id   INT REFERENCES customer (customer_id),
  purchase_date DATE,
  state         VARCHAR(10)
);`

const racingDDL = `
CREATE TABLE car (
  car_id   INT PRIMARY KEY,
  car_name VARCHAR(50),
  year     INT,
  country  VARCHAR(50)
);
CREATE TABLE race_result (
  result_id INT PRIMARY KEY,
  car_id    INT REFERENCES car (car_id),
  grid      INT,
  points    DECIMAL(5,2)
);`

func main() {
	crm, err := collabscope.ParseDDL("crm", crmDDL)
	check(err)
	shop, err := collabscope.ParseDDL("shop", shopDDL)
	check(err)
	racing, err := collabscope.ParseDDL("racing", racingDDL)
	check(err)
	schemas := []*collabscope.Schema{crm, shop, racing}

	pipe := collabscope.New()

	// The distributed workflow: each party trains its own model at the
	// agreed variance and shares ONLY the model (mean, components,
	// linkability range) — never its tables or attributes.
	const variance = 0.5 // small schemas warrant a lower variance
	models := make([]*collabscope.Model, len(schemas))
	for i, s := range schemas {
		models[i], err = pipe.TrainModel(s, variance)
		check(err)
		fmt.Printf("%s: trained local model with %d components, range %.4g\n",
			s.Name, models[i].Components(), models[i].Range)
	}
	fmt.Println()

	// Each party assesses its own schema against the others' models.
	for i, s := range schemas {
		foreign := make([]*collabscope.Model, 0, len(models)-1)
		for j, m := range models {
			if j != i {
				foreign = append(foreign, m)
			}
		}
		verdict := pipe.Assess(s, foreign)
		streamlined := s.Subset(verdict)
		fmt.Printf("%s: %d -> %d elements after linkability assessment\n",
			s.Name, s.NumElements(), streamlined.NumElements())
		check(streamlined.WriteJSON(os.Stdout))
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
