// Resilience demonstrates the exchange layer's fault-tolerance machinery
// end to end: a scoping service replicated across three hubs over one
// shared registry directory, a pipeline client configured with replica
// failover, a per-peer circuit breaker, and hedged GETs — then one replica
// is killed mid-run. Every assessment keeps answering through the
// survivors, the dead replica's breaker opens (visible in the metrics),
// and a graceful drain of a live replica flips its readiness probe while
// new work is refused with a typed, Retry-After-carrying error.
//
//	go run ./examples/resilience
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"time"

	"collabscope"
)

// replica is one hub of the fleet, all serving the same registry content.
type replica struct {
	srv *collabscope.ModelServer
	hs  *http.Server
	ln  net.Listener
}

func (r *replica) url() string { return "http://" + r.ln.Addr().String() }
func (r *replica) kill()       { _ = r.hs.Close() }
func bootReplica(dir string) (*replica, error) {
	srv, err := collabscope.NewScopingServer(
		collabscope.WithServerRegistry(dir),
		collabscope.WithServerMetrics(collabscope.NewMetrics()),
	)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &replica{srv: srv, hs: &http.Server{Handler: srv}, ln: ln}
	go func() { _ = r.hs.Serve(ln) }()
	return r, nil
}

func main() {
	exitCode := 0
	fig := collabscope.DatasetFigure1()
	const variance = 0.3

	// One registry directory shared by the whole fleet: every replica
	// serves bit-identical models (content-hash ETags prove it).
	dir, err := os.MkdirTemp("", "resilience-registry-*")
	check(err)
	defer os.RemoveAll(dir)

	// Train one model per schema and seed the registry through replica 0.
	seedMetrics := collabscope.NewMetrics()
	seeder := collabscope.New(collabscope.WithDimension(384), collabscope.WithMetrics(seedMetrics))
	fleet := make([]*replica, 3)
	for i := range fleet {
		fleet[i], err = bootReplica(dir)
		check(err)
	}
	ctx := context.Background()
	models := make([]*collabscope.Model, len(fig.Schemas))
	for i, s := range fig.Schemas {
		models[i], err = seeder.TrainModel(s, variance)
		check(err)
		check(seeder.UploadModel(ctx, fleet[0].url(), "", models[i]))
	}
	// Restart replicas 1 and 2 so they load the seeded registry.
	for i := 1; i < len(fleet); i++ {
		fleet[i].kill()
		fleet[i], err = bootReplica(dir)
		check(err)
	}
	fmt.Printf("fleet of %d replicas serving %d models from %s\n", len(fleet), len(models), dir)

	// The assessing party: replica failover + circuit breaker + hedged
	// GETs, all under one logical peer URL that is itself unroutable.
	const logical = "http://scoping.fleet.invalid"
	metrics := collabscope.NewMetrics()
	pipe := collabscope.New(
		collabscope.WithDimension(384),
		collabscope.WithMetrics(metrics),
		collabscope.WithRetryPolicy(collabscope.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Timeout:     2 * time.Second,
		}),
		collabscope.WithPeerReplicas(logical, fleet[0].url(), fleet[1].url(), fleet[2].url()),
		collabscope.WithCircuitBreaker(collabscope.BreakerPolicy{
			ConsecutiveFailures: 2,
			Cooldown:            500 * time.Millisecond,
		}),
		collabscope.WithHedgedGets(collabscope.HedgePolicy{Delay: 25 * time.Millisecond}),
	)

	assess := func(label string) *collabscope.RemoteAssessment {
		res, err := pipe.AssessServer(ctx, fig.Schemas[0], logical, "")
		check(err)
		fmt.Printf("%-28s %d verdicts against %d foreign models\n", label+":", len(res.Verdicts), len(res.Used))
		return res
	}
	baseline := assess("all replicas up")

	// Kill the first replica — the default first hop of every request. The
	// client fails over, and after two consecutive connection failures the
	// dead host's breaker opens so later calls skip it without a timeout.
	victim := fleet[0]
	victimHost := victim.ln.Addr().String()
	victim.kill()
	fmt.Printf("\nreplica %s killed\n", victimHost)
	for i := 0; i < 3; i++ {
		res := assess(fmt.Sprintf("after kill, call %d", i+1))
		if !reflect.DeepEqual(res.Verdicts, baseline.Verdicts) {
			fmt.Println("ERROR: verdicts deviated after failover")
			exitCode = 1
		}
	}
	snap := metrics.Snapshot()
	if snap.Counters["exchange.failovers"] == 0 {
		fmt.Println("ERROR: no failovers recorded")
		exitCode = 1
	}
	breakerState := snap.Gauges["exchange.breaker."+victimHost+".state"]
	fmt.Printf("\nfailovers=%d retries=%d breaker[%s].state=%d (0 closed, 1 half-open, 2 open)\n",
		snap.Counters["exchange.failovers"], snap.Counters["exchange.retries"], victimHost, breakerState)

	// Gracefully drain a live replica: liveness stays green, readiness
	// flips, and new assess work is refused with the typed draining error.
	drained := fleet[1]
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	check(drained.srv.Drain(dctx))
	hz := probe(drained.url() + "/v1/healthz")
	rz := probe(drained.url() + "/v1/readyz")
	fmt.Printf("\ndrained %s: healthz=%q readyz=%q\n", drained.ln.Addr().String(), hz, rz)
	if hz != "ok" || rz != "draining" {
		fmt.Println("ERROR: drained replica's health surface is wrong")
		exitCode = 1
	}

	// The fleet still answers: the drained replica's refusals are
	// retryable, so the client lands on the last healthy replica.
	res := assess("after drain")
	if !reflect.DeepEqual(res.Verdicts, baseline.Verdicts) {
		fmt.Println("ERROR: verdicts deviated after drain")
		exitCode = 1
	}
	for _, r := range fleet[1:] {
		r.kill()
	}
	if exitCode == 0 {
		fmt.Println("\nevery assessment answered identically through kill, breaker, and drain")
	}
	os.Exit(exitCode)
}

// probe GETs a health route and returns the reported status string.
func probe(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	var hr struct {
		Status string `json:"status"`
	}
	check(json.NewDecoder(resp.Body).Decode(&hr))
	return hr.Status
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
