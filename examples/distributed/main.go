// Distributed demonstrates collaborative scoping's privacy story over a
// real network boundary: three organisations run as independent parties on
// local TCP ports, each serving ONLY its trained model (mean, principal
// components, linkability range). Every party fetches its peers' models and
// assesses its own schema locally — no table or attribute ever crosses the
// wire.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"net"
	"os"
	"sort"
	"sync"

	"collabscope"
)

// party is one organisation: a schema, a shared pipeline configuration,
// and a TCP endpoint serving the trained model.
type party struct {
	schema *collabscope.Schema
	pipe   *collabscope.Pipeline
	model  *collabscope.Model
	ln     net.Listener
}

func newParty(s *collabscope.Schema, variance float64) (*party, error) {
	p := &party{schema: s, pipe: collabscope.New(collabscope.WithDimension(384))}
	var err error
	p.model, err = p.pipe.TrainModel(s, variance)
	if err != nil {
		return nil, err
	}
	p.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go p.serve()
	return p, nil
}

// serve answers every connection with the serialised model and closes.
func (p *party) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		_ = p.model.WriteJSON(conn)
		_ = conn.Close()
	}
}

// addr returns the party's model endpoint.
func (p *party) addr() string { return p.ln.Addr().String() }

// fetchModel downloads a peer's model.
func fetchModel(addr string) (*collabscope.Model, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return collabscope.ReadModelJSON(conn)
}

func main() {
	fig := collabscope.DatasetFigure1()
	const variance = 0.3 // tiny toy schemas need a low variance

	// Spin up one party per schema.
	parties := make([]*party, len(fig.Schemas))
	for i, s := range fig.Schemas {
		p, err := newParty(s, variance)
		check(err)
		parties[i] = p
		fmt.Printf("%s serving its model on %s (%d components, range %.4g)\n",
			s.Name, p.addr(), p.model.Components(), p.model.Range)
	}
	defer func() {
		for _, p := range parties {
			p.ln.Close()
		}
	}()
	fmt.Println()

	// Every party fetches the others' models concurrently and assesses
	// its own schema locally.
	var wg sync.WaitGroup
	var mu sync.Mutex
	results := map[string][]string{}
	for i, p := range parties {
		wg.Add(1)
		go func(i int, p *party) {
			defer wg.Done()
			var foreign []*collabscope.Model
			for j, peer := range parties {
				if j == i {
					continue
				}
				m, err := fetchModel(peer.addr())
				check(err)
				foreign = append(foreign, m)
			}
			verdict := p.pipe.Assess(p.schema, foreign)
			var kept []string
			for id, linkable := range verdict {
				if linkable {
					kept = append(kept, id.String())
				}
			}
			sort.Strings(kept)
			mu.Lock()
			results[p.schema.Name] = kept
			mu.Unlock()
		}(i, p)
	}
	wg.Wait()

	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s assessed linkable: %v\n", n, results[n])
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
