// Distributed demonstrates collaborative scoping's privacy story over a
// real network boundary — and its fault tolerance. Four organisations run
// as independent parties, each serving ONLY its trained model (mean,
// principal components, linkability range) from a local HTTP hub in wire
// format v1 (versioned JSON with a SHA-256 hash trailer, content-hash
// ETag). Every party fetches its peers' models and assesses its own schema
// locally — no table or attribute ever crosses the wire.
//
// The second half kills one party mid-run: the survivors' assessment
// rounds still complete — the exchange client retries, times out, and
// reports the dead peer instead of aborting — and their verdicts equal a
// baseline computed without the dead peer's model. Fewer foreign models
// only make collaborative scoping more conservative; nothing breaks.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"sort"
	"time"

	"collabscope"
)

// party is one organisation: a schema, a shared pipeline configuration,
// and an HTTP hub publishing the trained model.
type party struct {
	schema  *collabscope.Schema
	pipe    *collabscope.Pipeline
	metrics *collabscope.Metrics
	model   *collabscope.Model
	srv     *http.Server
	ln      net.Listener
}

func newParty(s *collabscope.Schema, variance float64) (*party, error) {
	p := &party{metrics: collabscope.NewMetrics()}
	p.schema = s
	p.pipe = collabscope.New(
		collabscope.WithDimension(384),
		// Fail over quickly when a peer is gone: two attempts with a short
		// per-request timeout instead of the 5 s production default.
		collabscope.WithRetryPolicy(collabscope.RetryPolicy{
			MaxAttempts: 2,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    100 * time.Millisecond,
			Timeout:     2 * time.Second,
		}),
		// Instrument the whole pipeline: spans, worker pool, and the
		// exchange client's per-peer latencies, retries, and ETag hits.
		collabscope.WithMetrics(p.metrics),
	)
	var err error
	p.model, err = p.pipe.TrainModel(s, variance)
	if err != nil {
		return nil, err
	}
	handler, err := collabscope.NewModelServer(p.model)
	if err != nil {
		return nil, err
	}
	p.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p.srv = &http.Server{Handler: handler}
	go func() { _ = p.srv.Serve(p.ln) }()
	return p, nil
}

// url returns the party's hub base URL.
func (p *party) url() string { return "http://" + p.ln.Addr().String() }

// shutdown takes the party's hub off the network.
func (p *party) shutdown() { _ = p.srv.Close() }

// assessRound has every assessor fetch the other parties' models over HTTP
// (dead hubs included — that is the point) and assess its own schema
// locally, returning each assessor's sorted keep-list and any reported
// peer failures.
func assessRound(assessors, all []*party) (map[string][]string, map[string][]collabscope.PeerError) {
	kept := map[string][]string{}
	failures := map[string][]collabscope.PeerError{}
	for _, p := range assessors {
		var peers []string
		for _, peer := range all {
			if peer != p {
				peers = append(peers, peer.url())
			}
		}
		res, err := p.pipe.AssessRemote(context.Background(), p.schema, peers)
		check(err)
		kept[p.schema.Name] = keepList(res.Verdicts)
		failures[p.schema.Name] = res.Failed
	}
	return kept, failures
}

func keepList(verdicts map[collabscope.ElementID]bool) []string {
	var kept []string
	for id, linkable := range verdicts {
		if linkable {
			kept = append(kept, id.String())
		}
	}
	sort.Strings(kept)
	return kept
}

func main() {
	fig := collabscope.DatasetFigure1()
	const variance = 0.3 // tiny toy schemas need a low variance

	// Spin up one party per schema.
	parties := make([]*party, len(fig.Schemas))
	for i, s := range fig.Schemas {
		p, err := newParty(s, variance)
		check(err)
		parties[i] = p
		fmt.Printf("%s serving its model at %s/models (%d components, range %.4g)\n",
			s.Name, p.url(), p.model.Components(), p.model.Range)
	}
	defer func() {
		for _, p := range parties {
			p.shutdown()
		}
	}()

	fmt.Println("\n--- round 1: all parties up ---")
	round1, failures1 := assessRound(parties, parties)
	for _, name := range sortedKeys(round1) {
		fmt.Printf("%s assessed linkable: %v\n", name, round1[name])
		if len(failures1[name]) > 0 {
			fmt.Printf("  unexpected failures: %v\n", failures1[name])
		}
	}

	// Kill one party mid-run. Its hub now refuses connections; the
	// survivors must keep going with one foreign model fewer.
	dead := parties[len(parties)-1]
	dead.shutdown()
	fmt.Printf("\n--- %s killed; round 2: survivors assess without it ---\n", dead.schema.Name)

	survivors := parties[:len(parties)-1]
	round2, failures2 := assessRound(survivors, parties)

	// Baseline: what each survivor would decide assessing in-process
	// against the surviving models only (no network at all).
	exitCode := 0
	for _, p := range survivors {
		var foreign []*collabscope.Model
		for _, peer := range survivors {
			if peer != p {
				foreign = append(foreign, peer.model)
			}
		}
		want := keepList(p.pipe.Assess(p.schema, foreign))
		name := p.schema.Name
		fmt.Printf("%s assessed linkable: %v\n", name, round2[name])
		for _, pe := range failures2[name] {
			fmt.Printf("  missing peer reported: %v\n", pe)
		}
		if len(failures2[name]) != 1 {
			fmt.Printf("  ERROR: expected exactly the dead peer in the report, got %v\n", failures2[name])
			exitCode = 1
		}
		if !reflect.DeepEqual(round2[name], want) {
			fmt.Printf("  ERROR: verdicts diverge from the dead-peer-excluded baseline %v\n", want)
			exitCode = 1
		}
	}
	if exitCode == 0 {
		fmt.Println("\nall survivor verdicts match the dead-peer-excluded baseline; the dead peer was reported, not fatal")
	}

	// One party's metrics snapshot tells the whole story: round 1 fetched
	// every peer fresh, round 2 revalidated the survivors' unchanged models
	// (304 ETag hits — no body crossed the wire) and burned its retry
	// budget on the dead hub. Per-peer request histograms name each hub.
	watcher := survivors[0]
	snap := watcher.metrics.Snapshot()
	fmt.Printf("\n--- %s's exchange metrics ---\n", watcher.schema.Name)
	watcher.metrics.Snapshot().Fprint(os.Stdout)
	if snap.Counters["exchange.etag_hits"] == 0 {
		fmt.Println("ERROR: round 2 should have revalidated unchanged models via 304")
		exitCode = 1
	}
	if snap.Counters["exchange.retries"] == 0 {
		fmt.Println("ERROR: the dead peer should have consumed retries")
		exitCode = 1
	}
	os.Exit(exitCode)
}

func sortedKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
