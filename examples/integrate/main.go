// Integrate shows the full journey from raw schemas to a mediated global
// schema: collaborative scoping prunes unlinkable elements, a matcher
// generates linkages over the streamlined schemas, linkage clusters become
// mediated tables, and UNION ALL view skeletons materialise them — the
// integration step the paper points to as the consumer of its linkages.
//
//	go run ./examples/integrate
package main

import (
	"fmt"

	"collabscope"
)

func main() {
	fig := collabscope.DatasetFigure1()
	pipe := collabscope.New()

	// 1. Scope: prune unlinkable elements (the CAR schema, DOB, …).
	res, err := pipe.CollaborativeScope(fig.Schemas, 0.3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scoping kept %d of %d elements\n", res.Kept, res.Kept+res.Pruned)

	// 2. Match the streamlined schemas.
	pairs := pipe.Match(collabscope.NewSimMatcher(0.55), res.Streamlined)
	fmt.Printf("matcher generated %d linkage candidates\n\n", len(pairs))

	// 3. Derive the mediated schema from the linkage clusters.
	med := collabscope.BuildMediated(fig.Schemas, pairs)
	for _, mt := range med.Tables {
		fmt.Printf("mediated table %s (%d columns, sources in %d schemas)\n",
			mt.Name, len(mt.Columns), len(mt.Sources))
		for _, col := range mt.Columns {
			fmt.Printf("  column %-12s <-", col.Name)
			for schemaName, attrs := range col.Sources {
				for _, a := range attrs {
					fmt.Printf(" %s.%s.%s", schemaName, a.Table, a.Attribute)
				}
			}
			fmt.Println()
		}
		fmt.Println()
		// 4. Materialisation skeleton.
		fmt.Println(collabscope.UnionView(mt))
		fmt.Println()
	}
}
