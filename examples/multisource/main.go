// Multisource compares collaborative scoping with the global-scoping
// baseline on the OC3 scenario: three Order-Customer schemas from different
// database vendors (Oracle, MySQL, SAP HANA) with a 103 % unlinkable
// overhead.
//
//	go run ./examples/multisource
package main

import (
	"fmt"

	"collabscope"
)

func main() {
	oc3 := collabscope.DatasetOC3()
	labels := oc3.Labels()
	pipe := collabscope.New()

	fmt.Println("OC3: three vendor schemas, 160 elements, 79 linkable")
	fmt.Println()

	// Global scoping (prior work): one outlier detector over the unified
	// signature set, keeping the lowest-scoring fraction p.
	for _, p := range []float64{0.5, 0.7, 0.9} {
		res, err := pipe.GlobalScope(oc3.Schemas, collabscope.NewPCADetector(0.5), p)
		if err != nil {
			panic(err)
		}
		report(fmt.Sprintf("global scoping PCA(0.5) p=%.1f", p), res, labels)
	}
	fmt.Println()

	// Collaborative scoping: per-schema encoder-decoders, assessed
	// mutually; the explained variance v is the only shared knob.
	for _, v := range []float64{0.9, 0.75, 0.5} {
		res, err := pipe.CollaborativeScope(oc3.Schemas, v)
		if err != nil {
			panic(err)
		}
		report(fmt.Sprintf("collaborative scoping v=%.2f", v), res, labels)
	}
}

// report prints scoping quality against the annotated linkability labels.
func report(name string, res *collabscope.ScopeResult, labels map[collabscope.ElementID]bool) {
	var tp, fp, fn int
	for id, kept := range res.Keep {
		switch {
		case kept && labels[id]:
			tp++
		case kept && !labels[id]:
			fp++
		case !kept && labels[id]:
			fn++
		}
	}
	prec := safeDiv(tp, tp+fp)
	rec := safeDiv(tp, tp+fn)
	f1 := 0.0
	if prec+rec > 0 {
		f1 = 2 * prec * rec / (prec + rec)
	}
	fmt.Printf("%-34s kept=%3d precision=%.3f recall=%.3f F1=%.3f\n",
		name, res.Kept, prec, rec, f1)
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
