module collabscope

go 1.23
