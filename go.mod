module collabscope

go 1.24
