package collabscope

// Hot-path benchmarks for the data-plane stages the blocked-kernel layer
// (internal/linalg, DESIGN.md §11) accelerates: the Composite matcher, the
// pairwise-distance detectors, the autoencoder ensemble, and flat top-k
// search. All run at OC3-FO scale (287 elements × 384 dims) so the numbers
// line up with the Table-4 runtime discussion. Run with:
//
//	go test -run xxx -bench 'HotPath' -benchmem
import (
	"context"
	"testing"

	"collabscope/internal/ann"
	"collabscope/internal/datasets"
	"collabscope/internal/experiments"
	"collabscope/internal/match"
	"collabscope/internal/outlier"
)

func ocfoEncoded(b *testing.B) *experiments.Encoded {
	b.Helper()
	return experiments.Encode(benchConfig(), datasets.OC3FO())
}

func BenchmarkHotPathMatcherComposite(b *testing.B) {
	enc := ocfoEncoded(b)
	m := match.Composite{Threshold: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.MatchAll(m, enc.Sets)
	}
}

func BenchmarkHotPathMatcherSim(b *testing.B) {
	enc := ocfoEncoded(b)
	m := match.Sim{Threshold: 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.MatchAll(m, enc.Sets)
	}
}

func BenchmarkHotPathDetectorLOF(b *testing.B) {
	enc := ocfoEncoded(b)
	det := outlier.LOF{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.ScoresContext(context.Background(), 1, enc.Union.Matrix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathDetectorKNN(b *testing.B) {
	enc := ocfoEncoded(b)
	det := outlier.KNNDistance{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.ScoresContext(context.Background(), 1, enc.Union.Matrix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathDetectorAutoencoder(b *testing.B) {
	enc := ocfoEncoded(b)
	det := outlier.Autoencoder{Models: 1, Epochs: 5, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.ScoresContext(context.Background(), 1, enc.Union.Matrix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathFlatSearch(b *testing.B) {
	enc := ocfoEncoded(b)
	idx := ann.NewFlatIndex(enc.Union.Matrix)
	queries := enc.Union.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := 0; q < queries.Rows(); q++ {
			idx.Search(queries.RowView(q), 10)
		}
	}
}
