package collabscope

import (
	"bytes"
	"testing"
)

func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestUpdateModelIncrementalLifecycle drives `collabscope update`'s engine
// through a schema's evolution: first run is a full fit, later runs apply
// diffs against the persisted state — and every round's model is
// byte-identical on the wire to a from-scratch TrainModel of the same
// schema revision (rows path: elements ≪ signature dimensions).
func TestUpdateModelIncrementalLifecycle(t *testing.T) {
	pipe := New(WithDimension(64))
	dir := t.TempDir()
	const v = 0.8

	rev1, err := ParseDDL("inv", `
		CREATE TABLE orders (id INT PRIMARY KEY, total DECIMAL(8,2), placed_at DATE);
		CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR(40));`)
	if err != nil {
		t.Fatal(err)
	}
	up, err := pipe.UpdateModel(rev1, v, dir)
	if err != nil {
		t.Fatal(err)
	}
	if up.Resumed || up.Version != 1 || up.Added == 0 || up.Removed != 0 {
		t.Fatalf("first update: %+v, want fresh full fit at version 1", up)
	}
	want, err := pipe.TrainModel(rev1, v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, up.Model), modelBytes(t, want)) {
		t.Fatal("incremental first fit differs from from-scratch TrainModel")
	}

	// Evolution: a new table arrives, one column is dropped.
	rev2, err := ParseDDL("inv", `
		CREATE TABLE orders (id INT PRIMARY KEY, total DECIMAL(8,2));
		CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR(40));
		CREATE TABLE shipments (id INT PRIMARY KEY, carrier VARCHAR(20), eta DATE);`)
	if err != nil {
		t.Fatal(err)
	}
	up2, err := pipe.UpdateModel(rev2, v, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !up2.Resumed || up2.Version != 2 {
		t.Fatalf("second update: %+v, want resumed state at version 2", up2)
	}
	if up2.Added == 0 || up2.Removed == 0 {
		t.Fatalf("second update delta %+v, want both additions and removals", up2)
	}
	want2, err := pipe.TrainModel(rev2, v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, up2.Model), modelBytes(t, want2)) {
		t.Fatal("incremental update differs from from-scratch TrainModel")
	}

	// Unchanged schema: a no-op diff, same version, same model.
	up3, err := pipe.UpdateModel(rev2, v, dir)
	if err != nil {
		t.Fatal(err)
	}
	if up3.Added+up3.Removed+up3.Changed != 0 || up3.Version != 2 {
		t.Fatalf("no-op update: %+v, want empty delta at version 2", up3)
	}
	if !bytes.Equal(modelBytes(t, up3.Model), modelBytes(t, want2)) {
		t.Fatal("no-op update changed the model")
	}
}

// TestAssessDeltaStateMatchesAssess pins `assess -delta`: verdicts equal
// plain Assess, and the second run over unchanged models reuses every
// persisted score column.
func TestAssessDeltaStateMatchesAssess(t *testing.T) {
	fig := DatasetFigure1()
	pipe := New(WithDimension(96))
	dir := t.TempDir()
	const v = 0.4

	local := fig.Schemas[0]
	var foreign []*Model
	for _, s := range fig.Schemas[1:] {
		m, err := pipe.TrainModel(s, v)
		if err != nil {
			t.Fatal(err)
		}
		foreign = append(foreign, m)
	}
	want := pipe.Assess(local, foreign)

	got, rep, err := pipe.AssessDeltaState(local, foreign, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reused != 0 || rep.Rescored == 0 {
		t.Fatalf("cold delta run: %+v, want everything re-scored", rep)
	}
	if len(got) != len(want) {
		t.Fatalf("%d delta verdicts, want %d", len(got), len(want))
	}
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("delta verdict for %s = %v, plain Assess says %v", id, got[id], w)
		}
	}

	got, rep, err = pipe.AssessDeltaState(local, foreign, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rescored != 0 || rep.Reused == 0 {
		t.Fatalf("warm delta run: %+v, want everything reused", rep)
	}
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("warm delta verdict for %s = %v, plain Assess says %v", id, got[id], w)
		}
	}
}
