package collabscope

import (
	"context"
	"net/http"

	"collabscope/internal/core"
	"collabscope/internal/exchange"
	"collabscope/internal/obs"
)

// Remote model exchange: the distributed deployment of the paper's
// algorithms, where every party trains locally and only models — never
// schema elements — cross the network. A party publishes its model through
// NewModelServer (or `collabscope serve`) and assesses against its peers
// with AssessRemote / CollaborativeScopeRemote, which tolerate missing
// peers by design: collaborative scoping just grows more conservative with
// fewer foreign models, and the result names every peer that was absent.

type (
	// RetryPolicy tunes the exchange client's fault tolerance: attempts
	// per request, capped exponential backoff with jitter, and the
	// per-request timeout. The zero value means the defaults (3 attempts,
	// 100 ms base delay, 2 s cap, 5 s timeout).
	RetryPolicy = exchange.RetryPolicy
	// PeerError names one peer that could not contribute to an exchange
	// round and why.
	PeerError = exchange.PeerError
)

// DefaultRetryPolicy returns the exchange client defaults.
func DefaultRetryPolicy() RetryPolicy { return exchange.DefaultRetryPolicy() }

// WithHTTPClient sets the HTTP transport of the remote-exchange methods
// (http.DefaultClient if unset). Per-request timeouts still come from the
// retry policy.
func WithHTTPClient(hc *http.Client) Option {
	return func(p *Pipeline) { p.httpClient = hc }
}

// WithRetryPolicy sets the retry policy of the remote-exchange methods.
func WithRetryPolicy(rp RetryPolicy) Option {
	return func(p *Pipeline) { p.retry = rp; p.hasRetry = true }
}

// exchangeClient builds the pipeline's exchange client from its options —
// once. The client persists across exchange rounds so its ETag cache can
// turn repeat fetches of unchanged models into 304 revalidations, and so
// its metrics (per-peer latency, retries, cache hits) accumulate in the
// pipeline's registry.
func (p *Pipeline) exchangeClient() *exchange.Client {
	p.exchOnce.Do(func() {
		var opts []exchange.ClientOption
		if p.httpClient != nil {
			opts = append(opts, exchange.WithHTTPClient(p.httpClient))
		}
		if p.hasRetry {
			opts = append(opts, exchange.WithRetryPolicy(p.retry))
		}
		if p.reg != nil {
			opts = append(opts, exchange.WithMetrics(p.reg))
		}
		p.exch = exchange.NewClient(opts...)
	})
	return p.exch
}

// ModelServer is an HTTP hub publishing trained models (an http.Handler).
// Beyond the model routes it can expose a GET /metrics JSON snapshot
// (SetMetrics) and, explicitly opted in, the net/http/pprof profiling
// endpoints under /debug/pprof/ (EnablePprof).
type ModelServer = exchange.Server

// NewModelServer returns a hub publishing the models at /models/<schema> in
// wire format v1, each with its content hash as a strong ETag, plus a
// /models listing. Serve it with net/http to become a model hub other
// parties can assess against.
func NewModelServer(models ...*Model) (*ModelServer, error) {
	return exchange.NewServer(models...)
}

// FetchModels fetches every peer's published models, degrading gracefully:
// it returns the models it could get (in peer order) and a report naming
// each peer that failed. Peers are base URLs of model hubs, e.g.
// "http://host:8080".
func (p *Pipeline) FetchModels(ctx context.Context, peers []string) ([]*Model, []PeerError) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.fetch")
	sp.Annotate("peers", int64(len(peers)))
	defer sp.End()
	return p.exchangeClient().FetchAll(ctx, peers)
}

// RemoteAssessment is the outcome of assessing a local schema against the
// models fetched from remote peers.
type RemoteAssessment struct {
	// Verdicts maps every local element to its linkability verdict.
	Verdicts map[ElementID]bool
	// Used names the schemas of the foreign models that were applied,
	// in peer order.
	Used []string
	// Failed names the peers (or individual peer models) that could not
	// be fetched. The assessment above excludes their contribution.
	Failed []PeerError
}

// AssessRemote fetches the peers' models and runs Algorithm 2 for the local
// schema against whichever peers responded. Missing peers do not abort the
// round: assessment proceeds with fewer foreign models — conservative, per
// the paper's design — and Failed reports who was absent. Models published
// under the local schema's own name are skipped, as Algorithm 2 requires.
func (p *Pipeline) AssessRemote(ctx context.Context, s *Schema, peers []string) (*RemoteAssessment, error) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.assess_remote")
	sp.Annotate("peers", int64(len(peers)))
	defer sp.End()
	fetched, failed := p.exchangeClient().FetchAll(ctx, peers)
	set, err := p.EncodeContext(ctx, s)
	if err != nil {
		return nil, err
	}
	foreign := foreignModels(fetched, s.Name)
	verdicts, err := core.AssessContext(ctx, p.workers, set, foreign, core.AssessConfig{})
	if err != nil {
		return nil, err
	}
	res := &RemoteAssessment{Verdicts: verdicts, Failed: failed}
	for _, m := range foreign {
		res.Used = append(res.Used, m.Schema)
	}
	return res, nil
}

// RemoteScopeResult is the outcome of a remote collaborative-scoping round
// for one party.
type RemoteScopeResult struct {
	ScopeResult
	// Local is the local model trained at the round's explained variance —
	// the model this party publishes to its peers.
	Local *Model
	// Used names the schemas of the foreign models applied.
	Used []string
	// Failed names the peers that contributed nothing; the verdicts above
	// exclude their models.
	Failed []PeerError
}

// CollaborativeScopeRemote runs one party's side of the paper's distributed
// workflow end to end: train the local model at explained variance
// v ∈ (0, 1] (Algorithm 1), fetch the peers' models, and assess the local
// schema against whoever responded (Algorithm 2). The result carries the
// local verdicts and streamlined schema, the local model (for publishing),
// and the per-peer failure report. With every peer absent the verdicts are
// all-unlinkable — the method's conservative floor — so callers that need
// a quorum should check Failed.
func (p *Pipeline) CollaborativeScopeRemote(ctx context.Context, s *Schema, v float64, peers []string) (*RemoteScopeResult, error) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.scope_remote")
	sp.Annotate("peers", int64(len(peers)))
	defer sp.End()
	set, err := p.EncodeContext(ctx, s)
	if err != nil {
		return nil, err
	}
	local, err := core.Train(set, v)
	if err != nil {
		return nil, err
	}
	fetched, failed := p.exchangeClient().FetchAll(ctx, peers)
	foreign := foreignModels(fetched, s.Name)
	verdicts, err := core.AssessContext(ctx, p.workers, set, foreign, core.AssessConfig{})
	if err != nil {
		return nil, err
	}
	res := &RemoteScopeResult{
		ScopeResult: *newScopeResult([]*Schema{s}, verdicts),
		Local:       local,
		Failed:      failed,
	}
	for _, m := range foreign {
		res.Used = append(res.Used, m.Schema)
	}
	return res, nil
}

// foreignModels drops models stamped with the local schema's name: a hub
// may republish every party's model, and Algorithm 2 must not let a schema
// assess against itself (self-reconstruction trivially succeeds).
func foreignModels(models []*Model, local string) []*Model {
	foreign := make([]*Model, 0, len(models))
	for _, m := range models {
		if m.Schema != local {
			foreign = append(foreign, m)
		}
	}
	return foreign
}
