package collabscope

import (
	"context"
	"net/http"
	"sort"

	"collabscope/internal/core"
	"collabscope/internal/exchange"
	"collabscope/internal/obs"
)

// Remote model exchange: the distributed deployment of the paper's
// algorithms, where every party trains locally and only models — never
// schema elements — cross the network. A party publishes its model through
// NewModelServer (or `collabscope serve`) and assesses against its peers
// with AssessRemote / CollaborativeScopeRemote, which tolerate missing
// peers by design: collaborative scoping just grows more conservative with
// fewer foreign models, and the result names every peer that was absent.

type (
	// RetryPolicy tunes the exchange client's fault tolerance: attempts
	// per request, capped exponential backoff with jitter, and the
	// per-request timeout. The zero value means the defaults (3 attempts,
	// 100 ms base delay, 2 s cap, 5 s timeout).
	RetryPolicy = exchange.RetryPolicy
	// PeerError names one peer that could not contribute to an exchange
	// round and why.
	PeerError = exchange.PeerError
	// BreakerPolicy tunes the per-peer circuit breaker enabled by
	// WithCircuitBreaker: consecutive-failure and error-rate triggers plus
	// the cooldown before the half-open probe. The zero value means the
	// defaults (5 consecutive failures, 16-request window, 2 s cooldown).
	BreakerPolicy = exchange.BreakerPolicy
	// HedgePolicy tunes hedged GETs enabled by WithHedgedGets: the latency
	// quantile of the primary replica after which a backup request races
	// it, and the delay floor. The zero fields mean the defaults (p95,
	// 50 ms).
	HedgePolicy = exchange.HedgePolicy
)

// ErrCircuitOpen is matched by errors.Is when a remote call was
// short-circuited because every candidate peer's breaker is open.
var ErrCircuitOpen = exchange.ErrCircuitOpen

// DefaultRetryPolicy returns the exchange client defaults.
func DefaultRetryPolicy() RetryPolicy { return exchange.DefaultRetryPolicy() }

// WithHTTPClient sets the HTTP transport of the remote-exchange methods
// (http.DefaultClient if unset). Per-request timeouts still come from the
// retry policy.
func WithHTTPClient(hc *http.Client) Option {
	return func(p *Pipeline) { p.httpClient = hc }
}

// WithRetryPolicy sets the retry policy of the remote-exchange methods.
func WithRetryPolicy(rp RetryPolicy) Option {
	return func(p *Pipeline) { p.retry = rp; p.hasRetry = true }
}

// WithCircuitBreaker arms the per-peer circuit breaker on the pipeline's
// exchange client: a peer that keeps failing is short-circuited with
// ErrCircuitOpen until its cooldown elapses, then probed half-open. Off by
// default.
func WithCircuitBreaker(bp BreakerPolicy) Option {
	return func(p *Pipeline) { p.exchOpts = append(p.exchOpts, exchange.WithBreaker(bp)) }
}

// WithPeerReplicas declares replicas for a logical peer base URL: remote
// calls addressed under logical fail over across the replicas in order,
// skipping hosts whose breaker is open. Repeat the option to declare
// further groups.
func WithPeerReplicas(logical string, replicas ...string) Option {
	return func(p *Pipeline) { p.exchOpts = append(p.exchOpts, exchange.WithReplicas(logical, replicas...)) }
}

// WithHedgedGets enables hedged GETs across peer replica groups: when the
// primary replica has not answered within its observed latency quantile, a
// backup request races it on the next replica and the first success wins.
func WithHedgedGets(hp HedgePolicy) Option {
	return func(p *Pipeline) { p.exchOpts = append(p.exchOpts, exchange.WithHedge(hp)) }
}

// exchangeClient builds the pipeline's exchange client from its options —
// once. The client persists across exchange rounds so its ETag cache can
// turn repeat fetches of unchanged models into 304 revalidations, and so
// its metrics (per-peer latency, retries, cache hits) accumulate in the
// pipeline's registry.
func (p *Pipeline) exchangeClient() *exchange.Client {
	p.exchOnce.Do(func() {
		var opts []exchange.ClientOption
		if p.httpClient != nil {
			opts = append(opts, exchange.WithHTTPClient(p.httpClient))
		}
		if p.hasRetry {
			opts = append(opts, exchange.WithRetryPolicy(p.retry))
		}
		if p.reg != nil {
			opts = append(opts, exchange.WithMetrics(p.reg))
		}
		opts = append(opts, p.exchOpts...)
		p.exch = exchange.NewClient(opts...)
	})
	return p.exch
}

// ModelServer is the scoping service (an http.Handler): a multi-tenant
// model registry fed by POST /v1/models uploads, the POST /v1/assess
// linkability hot path with admission control and request coalescing,
// model serving at /v1/models/<schema> (plus the legacy /models aliases),
// and an optional GET /v1/metrics JSON snapshot.
type ModelServer = exchange.Server

type (
	// ServerOption configures NewScopingServer, in the same functional
	// style as the Pipeline options.
	ServerOption = exchange.ServerOption
	// AdmissionConfig bounds the /v1/assess hot path: queue depth,
	// per-tenant quota, and the Retry-After advice on shed requests.
	AdmissionConfig = exchange.AdmissionConfig
	// Verdict is one element's linkability outcome — the shared shape of
	// the /v1/assess wire format and the CLI's assessment rendering.
	Verdict = exchange.Verdict
	// AssessRequest is the POST /v1/assess wire request.
	AssessRequest = exchange.AssessRequest
	// AssessResponse is the POST /v1/assess wire response.
	AssessResponse = exchange.AssessResponse
)

// WithServerModels publishes models (into the default tenant) at server
// construction time.
func WithServerModels(models ...*Model) ServerOption { return exchange.WithModels(models...) }

// WithServerMetrics attaches a metrics registry to the server: request,
// shed and latency metrics, served back at GET /v1/metrics.
func WithServerMetrics(m *Metrics) ServerOption { return exchange.WithServerMetrics(m) }

// WithServerPprof exposes net/http/pprof under /debug/pprof/.
func WithServerPprof() ServerOption { return exchange.WithPprof() }

// WithServerRegistry persists the server's model registry in the given
// directory (via the checkpoint store), so uploads survive restarts with
// byte-identical model bodies and verdicts.
func WithServerRegistry(dir string) ServerOption { return exchange.WithRegistryDir(dir) }

// WithServerAdmission bounds the assess hot path; the zero config means
// the defaults (queue depth 64, tenant quota = queue depth, Retry-After
// 1 s).
func WithServerAdmission(cfg AdmissionConfig) ServerOption { return exchange.WithAdmission(cfg) }

// WithServerWorkers bounds the worker-pool fan-out of one assess
// computation (0 = GOMAXPROCS).
func WithServerWorkers(n int) ServerOption { return exchange.WithServerWorkers(n) }

// NewScopingServer returns the scoping service configured by the given
// options. Serve it with net/http to run a long-lived multi-tenant hub.
func NewScopingServer(opts ...ServerOption) (*ModelServer, error) {
	return exchange.NewServer(opts...)
}

// NewModelServer returns a hub publishing the models at /models/<schema>
// (and /v1/models/<schema>) in wire format v1, each with its content hash
// as a strong ETag, plus a models listing. It is NewScopingServer with the
// models pre-published — kept for the original publish-only call sites.
func NewModelServer(models ...*Model) (*ModelServer, error) {
	return exchange.NewServer(exchange.WithModels(models...))
}

// FetchModels fetches every peer's published models, degrading gracefully:
// it returns the models it could get (in peer order) and a report naming
// each peer that failed. Peers are base URLs of model hubs, e.g.
// "http://host:8080".
func (p *Pipeline) FetchModels(ctx context.Context, peers []string) ([]*Model, []PeerError) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.fetch")
	sp.Annotate("peers", int64(len(peers)))
	defer sp.End()
	return p.exchangeClient().FetchAll(ctx, peers)
}

// Assessment is the shared outcome shape of every linkability assessment —
// local (Pipeline.Assess wrapped for rendering), peer-fetched
// (AssessRemote, CollaborativeScopeRemote) or service-side (AssessServer).
// The CLI renders all of them through List, so local and remote assessment
// print identically.
type Assessment struct {
	// Verdicts maps every local element to its linkability verdict.
	Verdicts map[ElementID]bool
	// Used names the schemas of the foreign models that were applied.
	Used []string
	// Failed names the peers (or individual peer models) that could not
	// contribute. The verdicts above exclude their models.
	Failed []PeerError
}

// List renders the verdicts as the shared Verdict type of the /v1/assess
// wire format, sorted by element name for deterministic output.
func (a *Assessment) List() []Verdict {
	out := make([]Verdict, 0, len(a.Verdicts))
	for id, linkable := range a.Verdicts {
		out = append(out, Verdict{Element: id.String(), Linkable: linkable})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Element < out[j].Element })
	return out
}

// RemoteAssessment is the outcome of assessing a local schema against the
// models fetched from remote peers.
type RemoteAssessment struct {
	Assessment
}

// AssessRemote fetches the peers' models and runs Algorithm 2 for the local
// schema against whichever peers responded. Missing peers do not abort the
// round: assessment proceeds with fewer foreign models — conservative, per
// the paper's design — and Failed reports who was absent. Models published
// under the local schema's own name are skipped, as Algorithm 2 requires.
func (p *Pipeline) AssessRemote(ctx context.Context, s *Schema, peers []string) (*RemoteAssessment, error) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.assess_remote")
	sp.Annotate("peers", int64(len(peers)))
	defer sp.End()
	fetched, failed := p.exchangeClient().FetchAll(ctx, peers)
	set, err := p.EncodeContext(ctx, s)
	if err != nil {
		return nil, err
	}
	foreign := foreignModels(fetched, s.Name)
	verdicts, err := core.AssessContext(ctx, p.workers, set, foreign, core.AssessConfig{})
	if err != nil {
		return nil, err
	}
	res := &RemoteAssessment{Assessment: Assessment{Verdicts: verdicts, Failed: failed}}
	for _, m := range foreign {
		res.Used = append(res.Used, m.Schema)
	}
	return res, nil
}

// RemoteScopeResult is the outcome of a remote collaborative-scoping round
// for one party: the streamlined-schema ScopeResult plus the shared
// Assessment shape (verdicts, used models, failed peers).
type RemoteScopeResult struct {
	ScopeResult
	Assessment
	// Local is the local model trained at the round's explained variance —
	// the model this party publishes to its peers.
	Local *Model
}

// CollaborativeScopeRemote runs one party's side of the paper's distributed
// workflow end to end: train the local model at explained variance
// v ∈ (0, 1] (Algorithm 1), fetch the peers' models, and assess the local
// schema against whoever responded (Algorithm 2). The result carries the
// local verdicts and streamlined schema, the local model (for publishing),
// and the per-peer failure report. With every peer absent the verdicts are
// all-unlinkable — the method's conservative floor — so callers that need
// a quorum should check Failed.
func (p *Pipeline) CollaborativeScopeRemote(ctx context.Context, s *Schema, v float64, peers []string) (*RemoteScopeResult, error) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.scope_remote")
	sp.Annotate("peers", int64(len(peers)))
	defer sp.End()
	set, err := p.EncodeContext(ctx, s)
	if err != nil {
		return nil, err
	}
	local, err := core.Train(set, v)
	if err != nil {
		return nil, err
	}
	fetched, failed := p.exchangeClient().FetchAll(ctx, peers)
	foreign := foreignModels(fetched, s.Name)
	verdicts, err := core.AssessContext(ctx, p.workers, set, foreign, core.AssessConfig{})
	if err != nil {
		return nil, err
	}
	res := &RemoteScopeResult{
		ScopeResult: *newScopeResult([]*Schema{s}, verdicts),
		Assessment:  Assessment{Verdicts: verdicts, Failed: failed},
		Local:       local,
	}
	for _, m := range foreign {
		res.Used = append(res.Used, m.Schema)
	}
	return res, nil
}

// UploadModel publishes a trained model into a scoping service's registry
// via POST /v1/models (tenant "" means the default namespace). The hub
// re-validates the wire checksum and the returned ETag is cross-checked
// against the local fingerprint.
func (p *Pipeline) UploadModel(ctx context.Context, base, tenant string, m *Model) error {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.upload")
	defer sp.End()
	_, err := p.exchangeClient().Upload(ctx, base, tenant, m)
	return err
}

// AssessServer assesses a local schema against a scoping service: the
// schema's signatures are encoded locally and posted to the hub's
// POST /v1/assess hot path (tenant "" means the default namespace), which
// runs Algorithm 2 against every foreign model in its registry. Only
// signatures travel — the schema's structure stays local. Shed responses
// (429) are retried under the pipeline's retry policy, honouring the
// hub's Retry-After advice.
func (p *Pipeline) AssessServer(ctx context.Context, s *Schema, base, tenant string) (*RemoteAssessment, error) {
	ctx, sp := obs.Start(p.obsContext(ctx), "pipeline.assess_server")
	defer sp.End()
	set, err := p.EncodeContext(ctx, s)
	if err != nil {
		return nil, err
	}
	req := &AssessRequest{Schema: s.Name, IDs: make([]string, len(set.IDs)), Signatures: make([][]float64, len(set.IDs))}
	for i, id := range set.IDs {
		req.IDs[i] = id.String()
		req.Signatures[i] = set.Matrix.RowView(i)
	}
	resp, err := p.exchangeClient().Assess(ctx, base, tenant, req)
	if err != nil {
		return nil, err
	}
	res := &RemoteAssessment{Assessment: Assessment{Verdicts: make(map[ElementID]bool, len(set.IDs))}}
	// The client already checked the row/verdict count; map verdicts back
	// to local element IDs by request order.
	for i, id := range set.IDs {
		res.Verdicts[id] = resp.Verdicts[i].Linkable
	}
	for _, ref := range resp.Used {
		res.Used = append(res.Used, ref.Schema)
	}
	return res, nil
}

// foreignModels drops models stamped with the local schema's name: a hub
// may republish every party's model, and Algorithm 2 must not let a schema
// assess against itself (self-reconstruction trivially succeeds).
func foreignModels(models []*Model, local string) []*Model {
	foreign := make([]*Model, 0, len(models))
	for _, m := range models {
		if m.Schema != local {
			foreign = append(foreign, m)
		}
	}
	return foreign
}
