package collabscope

import (
	"fmt"
	"strings"

	"collabscope/internal/embed"
	"collabscope/internal/encoder"
	"collabscope/internal/enrich"
)

// Pluggable encoder backends and the deterministic enrichment stage
// (DESIGN.md §16). The pipeline encoder is batch-first: Encoder takes a
// whole text batch per call, so a remote backend can amortise round trips
// while the local hash encoder fans out over the worker pool. Single-text
// encoders plug in through BatchEncoder.

// TextEncoder is a single-text encoder: one call, one signature. Wrap one
// with BatchEncoder to use it as a pipeline Encoder.
type TextEncoder = embed.TextEncoder

// BatchEncoder adapts a single-text encoder to the batch-first Encoder
// contract, fanning the batch out over the pipeline worker pool with the
// usual guarantees (bit-identical results at any worker count, panics
// isolated per element).
func BatchEncoder(e TextEncoder) Encoder { return embed.Batch(e) }

// ErrDimMismatch reports an encoder that violated its batch contract — a
// signature whose length differs from the declared Dim(), or a vector
// count differing from the text count. Detected at encoding ingress,
// before a truncated or padded matrix can corrupt downstream models.
var ErrDimMismatch = embed.ErrDimMismatch

// EncoderBackends lists the built-in encoder backend names accepted by
// WithEncoderBackend and the CLIs' -encoder flag.
func EncoderBackends() []string { return encoder.Backends() }

// WithEncoderBackend selects an encoder backend by spec instead of
// constructing one: "hash" (or "") for the deterministic default,
// "remote:<url>" for the batched HTTP backend with coalescing, retries,
// and a content-addressed signature cache. The backend inherits the
// pipeline's dimension (WithDimension), HTTP client, retry policy, and
// metrics registry, regardless of option order. An invalid spec surfaces
// on the first Encode/Scope call, not as a construction panic.
func WithEncoderBackend(spec string) Option {
	return func(p *Pipeline) {
		p.encSpec = spec
		p.hasEncSpec = true
	}
}

// WithEncoderCache persists the remote backend's signature cache under
// dir via the checkpoint store, so cache-warm reruns over the same
// schemas cost zero requests even across process restarts. Ignored by
// purely local backends.
func WithEncoderCache(dir string) Option {
	return func(p *Pipeline) { p.encCache = dir }
}

// Enricher derives extra context text per schema element ahead of
// encoding. Implementations must be deterministic, label-free, and
// append-only — see the enrichment contract in DESIGN.md §16.
type Enricher = enrich.Enricher

// NewLexiconEnricher returns the lexicon enricher: every element's tokens
// are expanded through the abbreviation/synonym lexicon (ACCT → account;
// CLIENT → buyer, customer, purchaser, …), bridging differently labelled
// but synonymous metadata.
func NewLexiconEnricher() Enricher { return enrich.NewLexicon() }

// NewFKContextEnricher returns the foreign-key context enricher: FK
// attributes are annotated with their reconstructed target table's name
// and key vocabulary, so a bare CUSTOMER_ID carries the context of the
// CUSTOMERS table it references.
func NewFKContextEnricher() Enricher { return enrich.NewFKContext() }

// Enrichers lists the built-in enricher names accepted by ParseEnrichers
// and the CLIs' -enrich flag.
func Enrichers() []string { return []string{"lexicon", "fk"} }

// ParseEnrichers resolves a comma-separated enricher list ("lexicon,fk");
// "" and "none" mean no enrichment.
func ParseEnrichers(spec string) ([]Enricher, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var out []Enricher
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "lexicon":
			out = append(out, NewLexiconEnricher())
		case "fk":
			out = append(out, NewFKContextEnricher())
		case "":
			return nil, fmt.Errorf("collabscope: empty enricher name in %q", spec)
		default:
			return nil, fmt.Errorf("collabscope: unknown enricher %q (have %s)",
				strings.TrimSpace(name), strings.Join(Enrichers(), ", "))
		}
	}
	return out, nil
}

// WithEnrichers runs the given enrichers, in order, between schema load
// and encoding on every pipeline path (Encode, CollaborativeScope,
// Match, …). No enrichers — the default — is the base pipeline exactly.
func WithEnrichers(es ...Enricher) Option {
	return func(p *Pipeline) { p.enrichers = append(p.enrichers, es...) }
}
