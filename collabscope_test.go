package collabscope

import (
	"strings"
	"testing"
)

func pipelineForTest() *Pipeline {
	return New(WithDimension(192))
}

func figure1Schemas() []*Schema {
	return DatasetFigure1().Schemas
}

func TestCollaborativeScopeEndToEnd(t *testing.T) {
	pipe := pipelineForTest()
	fig := DatasetFigure1()
	res, err := pipe.CollaborativeScope(fig.Schemas, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept+res.Pruned != 24 {
		t.Fatalf("verdicts cover %d elements, want 24", res.Kept+res.Pruned)
	}
	if len(res.Streamlined) != 4 {
		t.Fatalf("streamlined = %d schemas", len(res.Streamlined))
	}
	// The unrelated CAR schema must shrink more than the customer schemas.
	carKept := res.Streamlined[3].NumElements()
	s1Kept := res.Streamlined[0].NumElements()
	if carKept >= s1Kept {
		t.Errorf("CAR schema kept %d elements vs S1 %d; expected more pruning", carKept, s1Kept)
	}
}

func TestCollaborativeScopeValidation(t *testing.T) {
	pipe := pipelineForTest()
	if _, err := pipe.CollaborativeScope(figure1Schemas()[:1], 0.7); err == nil {
		t.Fatal("single schema should fail")
	}
	if _, err := pipe.CollaborativeScope(figure1Schemas(), 0); err == nil {
		t.Fatal("v=0 should fail")
	}
}

func TestTrainAndAssess(t *testing.T) {
	pipe := pipelineForTest()
	schemas := figure1Schemas()
	m2, err := pipe.TrainModel(schemas[1], 0.8)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := pipe.Assess(schemas[0], []*Model{m2})
	if len(verdicts) != schemas[0].NumElements() {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
}

func TestGlobalScope(t *testing.T) {
	pipe := pipelineForTest()
	schemas := figure1Schemas()
	res, err := pipe.GlobalScope(schemas, NewPCADetector(0.5), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept+res.Pruned != 24 {
		t.Fatalf("verdicts = %d", res.Kept+res.Pruned)
	}
	if res.Kept != 12 {
		t.Fatalf("keep 0.5 kept %d of 24", res.Kept)
	}
	if _, err := pipe.GlobalScope(schemas, nil, 0.5); err == nil {
		t.Fatal("nil detector should fail")
	}
	if _, err := pipe.GlobalScope(nil, NewZScoreDetector(), 0.5); err == nil {
		t.Fatal("no elements should fail")
	}
}

func TestDetectorConstructors(t *testing.T) {
	for _, d := range []Detector{
		NewZScoreDetector(),
		NewLOFDetector(0),
		NewPCADetector(0.5),
		NewAutoencoderDetector(1, 5, 1),
	} {
		if d.Name() == "" {
			t.Errorf("%T has empty name", d)
		}
	}
}

func TestMatchAndEvaluate(t *testing.T) {
	pipe := pipelineForTest()
	fig := DatasetFigure1()
	pairs := pipe.Match(NewLSHMatcher(1), fig.Schemas)
	if len(pairs) == 0 {
		t.Fatal("no pairs generated")
	}
	eval := EvaluateMatch(pairs, fig.Truth, fig.Schemas)
	if eval.PQ <= 0 || eval.PC <= 0 {
		t.Fatalf("eval = %+v", eval)
	}
	if eval.RR <= 0 || eval.RR > 1 {
		t.Fatalf("RR = %v", eval.RR)
	}
}

func TestScopingImprovesMatchPrecision(t *testing.T) {
	// The repository's headline integration claim: matching streamlined
	// schemas yields better pair quality than matching the originals.
	pipe := pipelineForTest()
	fig := DatasetFigure1()
	matcher := NewLSHMatcher(2)

	sota := EvaluateMatch(pipe.Match(matcher, fig.Schemas), fig.Truth, fig.Schemas)
	res, err := pipe.CollaborativeScope(fig.Schemas, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	scoped := EvaluateMatch(pipe.Match(matcher, res.Streamlined), fig.Truth, fig.Schemas)
	if scoped.PQ <= sota.PQ {
		t.Errorf("scoped PQ %.3f should beat SOTA PQ %.3f", scoped.PQ, sota.PQ)
	}
	if scoped.RR < sota.RR {
		t.Errorf("scoped RR %.3f should be at least SOTA RR %.3f", scoped.RR, sota.RR)
	}
}

func TestParseDDLFacade(t *testing.T) {
	s, err := ParseDDL("demo", "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20));")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTables() != 1 || s.NumAttributes() != 2 {
		t.Fatalf("schema = %d tables %d attrs", s.NumTables(), s.NumAttributes())
	}
}

func TestReadSchemaJSONFacade(t *testing.T) {
	js := `{"name":"X","tables":[{"name":"T","attributes":[{"name":"a","type":"TEXT"}]}]}`
	s, err := ReadSchemaJSON(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if s.Attribute("T", "a") == nil {
		t.Fatal("attribute missing")
	}
}

func TestGroundTruthFacade(t *testing.T) {
	g := NewGroundTruth()
	if err := g.Add(Linkage{
		A: TableID("A", "T1"), B: TableID("B", "T2"), Type: InterIdentical,
	}); err != nil {
		t.Fatal(err)
	}
	if !g.Contains(TableID("B", "T2"), TableID("A", "T1")) {
		t.Fatal("symmetric lookup failed")
	}
}

func TestBundledDatasets(t *testing.T) {
	if DatasetOC3().TotalStats().Tables != 18 {
		t.Fatal("OC3 shape wrong")
	}
	if DatasetOC3FO().TotalStats().Tables != 34 {
		t.Fatal("OC3-FO shape wrong")
	}
	if DatasetFigure1().TotalStats().Tables != 5 {
		t.Fatal("Figure1 shape wrong")
	}
}

func TestWithEncoderOption(t *testing.T) {
	base := New(WithDimension(64))
	custom := New(WithEncoder(base.Encoder()))
	if custom.Encoder().Dim() != 64 {
		t.Fatal("WithEncoder not honoured")
	}
}

func TestSuggestVarianceFacade(t *testing.T) {
	pipe := New(WithDimension(192))
	oc3 := DatasetOC3()
	v, err := pipe.SuggestVariance(oc3.Schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v > 1 {
		t.Fatalf("suggested v = %v", v)
	}
	// Using the suggestion must produce a non-trivial scoping.
	res, err := pipe.CollaborativeScope(oc3.Schemas, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept == 0 || res.Pruned == 0 {
		t.Fatalf("degenerate scoping at suggested v=%v: kept=%d pruned=%d", v, res.Kept, res.Pruned)
	}
	if _, err := pipe.SuggestVariance(oc3.Schemas[:1], nil); err == nil {
		t.Fatal("single schema should fail")
	}
}

func TestMatchHolisticFacade(t *testing.T) {
	pipe := pipelineForTest()
	fig := DatasetFigure1()
	pairs := pipe.MatchHolistic(4, 1, fig.Schemas)
	if len(pairs) == 0 {
		t.Fatal("holistic matching found nothing")
	}
	auto := pipe.MatchHolisticAuto([]int{2, 4, 6}, 1, fig.Schemas)
	if len(auto) == 0 {
		t.Fatal("auto holistic matching found nothing")
	}
	eval := EvaluateMatch(pairs, fig.Truth, fig.Schemas)
	if eval.PC == 0 {
		t.Fatal("holistic matching found no true linkages")
	}
}
