package collabscope_test

import (
	"fmt"
	"sort"

	"collabscope"
)

// Example demonstrates the end-to-end pipeline on two hand-built schemas:
// parse DDL, collaboratively scope, and match the streamlined schemas.
func Example() {
	crm, err := collabscope.ParseDDL("crm", `
	    CREATE TABLE client (cid INT PRIMARY KEY, name VARCHAR(100),
	                         address VARCHAR(200), phone VARCHAR(20));
	    CREATE TABLE orders (order_id INT PRIMARY KEY,
	                         cid INT REFERENCES client (cid), order_date DATE);`)
	if err != nil {
		panic(err)
	}
	shop, err := collabscope.ParseDDL("shop", `
	    CREATE TABLE customer (customer_id INT PRIMARY KEY, first_name VARCHAR(50),
	                           last_name VARCHAR(50), city VARCHAR(50), dob DATE);
	    CREATE TABLE purchases (purchase_id INT PRIMARY KEY,
	                            customer_id INT REFERENCES customer (customer_id),
	                            purchase_date DATE);`)
	if err != nil {
		panic(err)
	}
	racing, err := collabscope.ParseDDL("racing", `
	    CREATE TABLE car (car_id INT PRIMARY KEY, car_name VARCHAR(50),
	                      year INT, country VARCHAR(50));`)
	if err != nil {
		panic(err)
	}

	pipe := collabscope.New()
	res, err := pipe.CollaborativeScope([]*collabscope.Schema{crm, shop, racing}, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("kept %d of %d elements\n", res.Kept, res.Kept+res.Pruned)

	pairs := pipe.Match(collabscope.NewLSHMatcher(1), res.Streamlined)
	for _, p := range pairs {
		fmt.Printf("%s ~ %s\n", p.A, p.B)
	}
	// Output:
	// kept 7 of 24 elements
	// crm.client ~ shop.customer
	// crm.orders ~ shop.purchases
	// crm.client.name ~ shop.customer.first_name
	// crm.orders.order_date ~ shop.purchases.purchase_date
	// crm.orders.order_id ~ shop.customer.customer_id
	// crm.orders.order_id ~ shop.purchases.purchase_id
}

// ExamplePipeline_TrainModel shows the distributed workflow: one party
// trains a model, the other assesses against it — no schema elements are
// exchanged.
func ExamplePipeline_TrainModel() {
	fig := collabscope.DatasetFigure1()
	pipe := collabscope.New()

	// S2 trains locally and publishes only {mean, components, range}.
	model, err := pipe.TrainModel(fig.Schemas[1], 0.5)
	if err != nil {
		panic(err)
	}

	// S1 assesses its elements against S2's model.
	verdicts := pipe.Assess(fig.Schemas[0], []*collabscope.Model{model})
	var linkable []string
	for id, ok := range verdicts {
		if ok {
			linkable = append(linkable, id.String())
		}
	}
	sort.Strings(linkable)
	fmt.Println(linkable)
	// Output:
	// [S1.CLIENT.CID S1.CLIENT.NAME]
}

// ExampleEvaluateMatch scores generated linkages against annotated ground
// truth with the paper's PQ / PC / F1 / RR metrics.
func ExampleEvaluateMatch() {
	fig := collabscope.DatasetFigure1()
	pipe := collabscope.New()
	pairs := pipe.Match(collabscope.NewSimMatcher(0.8), fig.Schemas)
	eval := collabscope.EvaluateMatch(pairs, fig.Truth, fig.Schemas)
	fmt.Printf("PQ=%.2f PC=%.2f\n", eval.PQ, eval.PC)
	// Output:
	// PQ=1.00 PC=0.31
}
