// Command lintobs enforces the repository's timing discipline: time.Now
// belongs to internal/obs. Hot paths measure durations through
// obs.Stopwatch / obs.Registry.Clock, which keeps latency observable via
// WithMetrics and keeps the disabled path zero-cost; a stray time.Now in a
// loop is invisible to both.
//
// Usage:
//
//	lintobs ./...
//	lintobs ./internal/parallel ./internal/core
//
// Scans non-test Go files under the given roots, skipping internal/obs
// itself. A deliberate wall-clock use is waived with a trailing
// "// lintobs:allow <reason>" comment on the offending line.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	var offenders []string
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			if strings.Contains(filepath.ToSlash(path), "internal/obs/") {
				return nil
			}
			found, err := scanFile(path)
			if err != nil {
				return err
			}
			offenders = append(offenders, found...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintobs:", err)
			os.Exit(1)
		}
	}
	if len(offenders) > 0 {
		fmt.Fprintln(os.Stderr, "lintobs: time.Now outside internal/obs — use obs.NewStopwatch / obs.Registry.Clock,")
		fmt.Fprintln(os.Stderr, "lintobs: or waive a deliberate wall-clock use with `// lintobs:allow <reason>`:")
		for _, o := range offenders {
			fmt.Fprintln(os.Stderr, "\t"+o)
		}
		os.Exit(1)
	}
	fmt.Println("lintobs: clean")
}

// scanFile returns one "<path>:<line>" per unwaived time.Now call.
func scanFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	// Resolve the local name of the "time" import ("time" unless renamed).
	timeName := ""
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "time" {
			continue
		}
		timeName = "time"
		if imp.Name != nil {
			timeName = imp.Name.Name
		}
	}
	if timeName == "" || timeName == "_" {
		return nil, nil
	}
	// Waived lines carry a lintobs:allow comment.
	waived := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "lintobs:allow") {
				waived[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	var offenders []string
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || ident.Name != timeName {
			return true
		}
		pos := fset.Position(call.Pos())
		if !waived[pos.Line] {
			offenders = append(offenders, fmt.Sprintf("%s:%d", pos.Filename, pos.Line))
		}
		return true
	})
	return offenders, nil
}
