// Command lintobs enforces two repository hot-path disciplines.
//
// Timing: time.Now belongs to internal/obs. Hot paths measure durations
// through obs.Stopwatch / obs.Registry.Clock, which keeps latency
// observable via WithMetrics and keeps the disabled path zero-cost; a
// stray time.Now in a loop is invisible to both.
//
// Kernels: per-pair linalg calls (SquaredDistance, CosineSimilarity,
// Distance) inside doubly nested loops rebuild the O(n²) panels the
// blocked kernel layer (DESIGN.md §11) exists for. Such call sites should
// use PairwiseSquaredDistancesInto / CosineSimilaritiesInto /
// RowSquaredDistancesInto instead; internal/linalg itself is exempt.
//
// Usage:
//
//	lintobs ./...
//	lintobs ./internal/parallel ./internal/core
//
// Scans non-test Go files under the given roots, skipping internal/obs for
// the timing check and internal/linalg for the kernel check. A deliberate
// use is waived with a trailing "// lintobs:allow <reason>" comment on the
// offending line.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	var timeOffenders, kernelOffenders []string
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			slash := filepath.ToSlash(path)
			if !strings.Contains(slash, "internal/obs/") {
				found, err := scanFile(path)
				if err != nil {
					return err
				}
				timeOffenders = append(timeOffenders, found...)
			}
			if !strings.Contains(slash, "internal/linalg/") {
				found, err := scanKernelBypass(path)
				if err != nil {
					return err
				}
				kernelOffenders = append(kernelOffenders, found...)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintobs:", err)
			os.Exit(1)
		}
	}
	if len(timeOffenders) > 0 {
		fmt.Fprintln(os.Stderr, "lintobs: time.Now outside internal/obs — use obs.NewStopwatch / obs.Registry.Clock,")
		fmt.Fprintln(os.Stderr, "lintobs: or waive a deliberate wall-clock use with `// lintobs:allow <reason>`:")
		for _, o := range timeOffenders {
			fmt.Fprintln(os.Stderr, "\t"+o)
		}
	}
	if len(kernelOffenders) > 0 {
		fmt.Fprintln(os.Stderr, "lintobs: per-pair linalg call in a nested loop — use the blocked kernels")
		fmt.Fprintln(os.Stderr, "lintobs: (PairwiseSquaredDistancesInto / CosineSimilaritiesInto / RowSquaredDistancesInto),")
		fmt.Fprintln(os.Stderr, "lintobs: or waive a deliberate per-pair use with `// lintobs:allow <reason>`:")
		for _, o := range kernelOffenders {
			fmt.Fprintln(os.Stderr, "\t"+o)
		}
	}
	if len(timeOffenders)+len(kernelOffenders) > 0 {
		os.Exit(1)
	}
	fmt.Println("lintobs: clean")
}

// scanFile returns one "<path>:<line>" per unwaived time.Now call.
func scanFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	// Resolve the local name of the "time" import ("time" unless renamed).
	timeName := ""
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "time" {
			continue
		}
		timeName = "time"
		if imp.Name != nil {
			timeName = imp.Name.Name
		}
	}
	if timeName == "" || timeName == "_" {
		return nil, nil
	}
	// Waived lines carry a lintobs:allow comment.
	waived := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "lintobs:allow") {
				waived[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	var offenders []string
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || ident.Name != timeName {
			return true
		}
		pos := fset.Position(call.Pos())
		if !waived[pos.Line] {
			offenders = append(offenders, fmt.Sprintf("%s:%d", pos.Filename, pos.Line))
		}
		return true
	})
	return offenders, nil
}

// kernelBypass is the set of per-pair linalg helpers that rebuild an
// O(n²) panel when called inside doubly nested loops.
var kernelBypass = map[string]bool{
	"SquaredDistance":  true,
	"CosineSimilarity": true,
	"Distance":         true,
}

// scanKernelBypass returns one "<path>:<line>" per unwaived per-pair
// linalg call at for/range nesting depth ≥ 2.
func scanKernelBypass(path string) ([]string, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	// Resolve the local name of the linalg import ("linalg" unless renamed).
	linalgName := ""
	for _, imp := range file.Imports {
		if !strings.HasSuffix(strings.Trim(imp.Path.Value, `"`), "internal/linalg") {
			continue
		}
		linalgName = "linalg"
		if imp.Name != nil {
			linalgName = imp.Name.Name
		}
	}
	if linalgName == "" || linalgName == "_" {
		return nil, nil
	}
	waived := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "lintobs:allow") {
				waived[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	var offenders []string
	// Track loop nesting with an explicit stack mirroring ast.Inspect's
	// push (n != nil) / pop (n == nil) protocol.
	var stack []bool
	loopDepth := 0
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			if stack[len(stack)-1] {
				loopDepth--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		isLoop := false
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			isLoop = true
		}
		stack = append(stack, isLoop)
		if isLoop {
			loopDepth++
		}
		if loopDepth < 2 {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !kernelBypass[sel.Sel.Name] {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || ident.Name != linalgName {
			return true
		}
		pos := fset.Position(call.Pos())
		if !waived[pos.Line] {
			offenders = append(offenders, fmt.Sprintf("%s:%d", pos.Filename, pos.Line))
		}
		return true
	})
	return offenders, nil
}
