package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScanFlagsBareTimeNow(t *testing.T) {
	path := write(t, "hot.go", `package p

import "time"

func f() time.Time { return time.Now() }
`)
	offenders, err := scanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 1 {
		t.Fatalf("offenders = %v, want exactly one", offenders)
	}
}

func TestScanHonoursWaiver(t *testing.T) {
	path := write(t, "waived.go", `package p

import "time"

func f() time.Time { return time.Now() } // lintobs:allow deadline polling, not latency
`)
	offenders, err := scanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("waived line still flagged: %v", offenders)
	}
}

func TestScanResolvesRenamedImport(t *testing.T) {
	path := write(t, "renamed.go", `package p

import clock "time"

func f() clock.Time { return clock.Now() }
`)
	offenders, err := scanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 1 {
		t.Fatalf("renamed import not flagged: %v", offenders)
	}
}

func TestScanIgnoresOtherNow(t *testing.T) {
	path := write(t, "other.go", `package p

type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

func f() int {
	var time fakeClock
	return time.Now()
}
`)
	// A local identifier named "time" without the time import must not trip
	// the scan (the file imports nothing).
	offenders, err := scanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("non-time Now flagged: %v", offenders)
	}
}

// TestRepoIsClean runs the scan over the whole repository — the same gate
// CI runs — so a time.Now regression fails here first.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	var offenders []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		if filepath.Ext(path) != ".go" || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if strings.Contains(filepath.ToSlash(path), "internal/obs/") {
			return nil
		}
		found, err := scanFile(path)
		if err != nil {
			return err
		}
		offenders = append(offenders, found...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("time.Now outside internal/obs: %v", offenders)
	}
}
