package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScanFlagsBareTimeNow(t *testing.T) {
	path := write(t, "hot.go", `package p

import "time"

func f() time.Time { return time.Now() }
`)
	offenders, err := scanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 1 {
		t.Fatalf("offenders = %v, want exactly one", offenders)
	}
}

func TestScanHonoursWaiver(t *testing.T) {
	path := write(t, "waived.go", `package p

import "time"

func f() time.Time { return time.Now() } // lintobs:allow deadline polling, not latency
`)
	offenders, err := scanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("waived line still flagged: %v", offenders)
	}
}

func TestScanResolvesRenamedImport(t *testing.T) {
	path := write(t, "renamed.go", `package p

import clock "time"

func f() clock.Time { return clock.Now() }
`)
	offenders, err := scanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 1 {
		t.Fatalf("renamed import not flagged: %v", offenders)
	}
}

func TestScanIgnoresOtherNow(t *testing.T) {
	path := write(t, "other.go", `package p

type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

func f() int {
	var time fakeClock
	return time.Now()
}
`)
	// A local identifier named "time" without the time import must not trip
	// the scan (the file imports nothing).
	offenders, err := scanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("non-time Now flagged: %v", offenders)
	}
}

const kernelLoopSrc = `package p

import "collabscope/internal/linalg"

func pairwise(a, b *linalg.Dense) float64 {
	var s float64
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Rows(); j++ {
			s += linalg.SquaredDistance(a.RowView(i), b.RowView(j))
		}
	}
	return s
}
`

func TestScanKernelBypassFlagsNestedLoop(t *testing.T) {
	path := write(t, "nested.go", kernelLoopSrc)
	offenders, err := scanKernelBypass(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 1 {
		t.Fatalf("offenders = %v, want exactly one", offenders)
	}
}

func TestScanKernelBypassHonoursWaiver(t *testing.T) {
	src := strings.Replace(kernelLoopSrc,
		"linalg.SquaredDistance(a.RowView(i), b.RowView(j))",
		"linalg.SquaredDistance(a.RowView(i), b.RowView(j)) // lintobs:allow tiny fixed-size panel", 1)
	path := write(t, "waived.go", src)
	offenders, err := scanKernelBypass(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("waived line still flagged: %v", offenders)
	}
}

func TestScanKernelBypassAllowsSingleLoop(t *testing.T) {
	path := write(t, "single.go", `package p

import "collabscope/internal/linalg"

func rowScan(a *linalg.Dense, q []float64) float64 {
	var s float64
	for i := 0; i < a.Rows(); i++ {
		s += linalg.SquaredDistance(q, a.RowView(i))
	}
	return s
}
`)
	offenders, err := scanKernelBypass(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("depth-1 loop flagged: %v", offenders)
	}
}

func TestScanKernelBypassSequentialLoopsNotNested(t *testing.T) {
	path := write(t, "sequential.go", `package p

import "collabscope/internal/linalg"

func twoScans(a *linalg.Dense, q []float64) float64 {
	var s float64
	for i := 0; i < a.Rows(); i++ {
		_ = i
	}
	for j := 0; j < a.Rows(); j++ {
		s += linalg.Distance(q, a.RowView(j))
	}
	return s
}
`)
	offenders, err := scanKernelBypass(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("sequential loops mis-counted as nested: %v", offenders)
	}
}

func TestScanKernelBypassIgnoresOtherPackages(t *testing.T) {
	path := write(t, "other.go", `package p

type fake struct{}

func (fake) Distance(a, b []float64) float64 { return 0 }

func f(linalg fake, a, b []float64) float64 {
	var s float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			s += linalg.Distance(a, b)
		}
	}
	return s
}
`)
	// No linalg import: the scan must not fire on a shadowing identifier.
	offenders, err := scanKernelBypass(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("non-linalg Distance flagged: %v", offenders)
	}
}

// TestRepoIsClean runs both scans over the whole repository — the same
// gate CI runs — so a time.Now or kernel-bypass regression fails here
// first.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	var offenders []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		if filepath.Ext(path) != ".go" || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		slash := filepath.ToSlash(path)
		if !strings.Contains(slash, "internal/obs/") {
			found, err := scanFile(path)
			if err != nil {
				return err
			}
			offenders = append(offenders, found...)
		}
		if !strings.Contains(slash, "internal/linalg/") {
			found, err := scanKernelBypass(path)
			if err != nil {
				return err
			}
			offenders = append(offenders, found...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("lintobs offenders: %v", offenders)
	}
}
