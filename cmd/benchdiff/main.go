// Command benchdiff gates performance regressions: it compares a fresh
// benchmark report (benchtables -benchjson) against the committed baseline
// and fails when any table slowed down beyond the threshold.
//
// Usage:
//
//	benchdiff -baseline BENCH_tables.json -current /tmp/bench.json
//	benchdiff -threshold 0.25 ...
//
// Raw wall times are not comparable across machines, so every entry is
// normalised by the reports' _calibration entries — a fixed CPU-bound probe
// both runs execute — before the threshold applies. A slower CI runner
// scales both the probe and the tables; only a genuine per-table slowdown
// survives the normalisation.
package main

import (
	"flag"
	"fmt"
	"os"

	"collabscope/internal/experiments"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_tables.json", "committed baseline report")
		currentPath  = flag.String("current", "", "fresh report to gate (required)")
		threshold    = flag.Float64("threshold", 0.25, "maximum tolerated normalised slowdown (0.25 = +25%)")
	)
	flag.Parse()
	if *currentPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	baseline := readReport(*baselinePath)
	current := readReport(*currentPath)

	rows, regressions, err := diff(baseline, current, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	fmt.Printf("%-22s %12s %12s %10s %8s\n", "benchmark", "baseline", "current*", "change", "gate")
	for _, row := range rows {
		fmt.Printf("%-22s %12s %12s %+9.1f%% %8s\n",
			row.Name, fmtNS(row.BaselineNS), fmtNS(row.NormalizedNS), 100*row.Change, row.Gate)
	}
	fmt.Printf("(*current normalised by calibration ratio %.3f; threshold +%.0f%%)\n",
		current.calibration()/baseline.calibration(), 100**threshold)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d benchmark(s) regressed beyond +%.0f%%: %v\n",
			len(regressions), 100**threshold, regressions)
		fmt.Fprintln(os.Stderr, "If the slowdown is intended (e.g. a table now does more work),")
		fmt.Fprintln(os.Stderr, "refresh the baseline and commit it:")
		fmt.Fprintln(os.Stderr, "\tmake bench-json && cp /tmp/BENCH_tables.json BENCH_tables.json")
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

type report struct{ *experiments.BenchReport }

func (r report) calibration() float64 {
	e, _ := r.Entry(experiments.CalibrationName)
	return float64(e.WallNS)
}

func readReport(path string) report {
	fh, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	defer fh.Close()
	rep, err := experiments.ReadBenchJSON(fh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
		os.Exit(1)
	}
	return report{rep}
}

// diffRow is one benchmark's verdict.
type diffRow struct {
	Name         string
	BaselineNS   int64
	NormalizedNS int64
	Change       float64
	Gate         string
}

// diff compares current against baseline: each current entry is divided by
// the calibration ratio (current machine speed / baseline machine speed),
// then gated at threshold. It returns every comparable row plus the names
// that regressed. Entries present on only one side are reported but never
// gate — a renamed or new benchmark must not fail the build that adds it.
func diff(baseline, current report, threshold float64) ([]diffRow, []string, error) {
	if baseline.Config != current.Config {
		return nil, nil, fmt.Errorf("config mismatch: baseline %q vs current %q (regenerate the baseline with the same settings)",
			baseline.Config, current.Config)
	}
	calBase, calCur := baseline.calibration(), current.calibration()
	if calBase <= 0 || calCur <= 0 {
		return nil, nil, fmt.Errorf("non-positive calibration time (baseline %v, current %v)", calBase, calCur)
	}
	ratio := calCur / calBase

	var rows []diffRow
	var regressions []string
	for _, be := range baseline.Entries {
		if be.Name == experiments.CalibrationName {
			continue
		}
		ce, ok := current.Entry(be.Name)
		if !ok {
			rows = append(rows, diffRow{Name: be.Name, BaselineNS: be.WallNS, Gate: "missing"})
			continue
		}
		norm := int64(float64(ce.WallNS) / ratio)
		change := float64(norm)/float64(be.WallNS) - 1
		gate := "ok"
		if change > threshold {
			gate = "FAIL"
			regressions = append(regressions, be.Name)
		}
		rows = append(rows, diffRow{Name: be.Name, BaselineNS: be.WallNS, NormalizedNS: norm, Change: change, Gate: gate})
	}
	for _, ce := range current.Entries {
		if ce.Name == experiments.CalibrationName {
			continue
		}
		if _, ok := baseline.Entry(ce.Name); !ok {
			rows = append(rows, diffRow{Name: ce.Name, NormalizedNS: int64(float64(ce.WallNS) / ratio), Gate: "new"})
		}
	}
	return rows, regressions, nil
}

func fmtNS(ns int64) string {
	switch {
	case ns == 0:
		return "-"
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}
