package main

import (
	"testing"

	"collabscope/internal/experiments"
)

func syntheticReport(scale float64, calNS int64) report {
	mk := func(name string, ns int64) experiments.BenchEntry {
		return experiments.BenchEntry{Name: name, WallNS: int64(float64(ns) * scale)}
	}
	return report{&experiments.BenchReport{
		Version: experiments.BenchVersion,
		Config:  "dim=192 psteps=25 vgrid=11 ae=2x15 seed=1",
		Entries: []experiments.BenchEntry{
			{Name: experiments.CalibrationName, WallNS: calNS},
			mk("encode", 800_000_000),
			mk("table4_oc3", 1_500_000_000),
			mk("collab_curves_oc3", 900_000_000),
		},
	}}
}

// TestDiffFailsOnSyntheticSlowdown is the gate's self-test: a current
// report with every table 2× slower (same machine speed) must fail the 25%
// threshold on every entry.
func TestDiffFailsOnSyntheticSlowdown(t *testing.T) {
	baseline := syntheticReport(1, 100_000_000)
	slow := syntheticReport(2, 100_000_000)
	rows, regressions, err := diff(baseline, slow, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 3 {
		t.Fatalf("regressions = %v, want all 3 benchmarks", regressions)
	}
	for _, row := range rows {
		if row.Gate != "FAIL" {
			t.Errorf("%s: gate %q, want FAIL (change %.2f)", row.Name, row.Gate, row.Change)
		}
		if row.Change < 0.9 || row.Change > 1.1 {
			t.Errorf("%s: change %.2f, want ≈ 1.0 (2× slowdown)", row.Name, row.Change)
		}
	}
}

// TestDiffNormalizesMachineSpeed: the same workload on a uniformly 2×
// slower machine (calibration slows down too) must pass — the gate fires on
// per-table regressions, not on runner speed.
func TestDiffNormalizesMachineSpeed(t *testing.T) {
	baseline := syntheticReport(1, 100_000_000)
	slowMachine := syntheticReport(2, 200_000_000)
	_, regressions, err := diff(baseline, slowMachine, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("uniformly slower machine flagged as regression: %v", regressions)
	}
}

// TestDiffWithinThresholdPasses: a 10% slowdown stays under the 25% gate.
func TestDiffWithinThresholdPasses(t *testing.T) {
	baseline := syntheticReport(1, 100_000_000)
	slightly := syntheticReport(1.1, 100_000_000)
	rows, regressions, err := diff(baseline, slightly, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("10%% slowdown flagged: %v", regressions)
	}
	for _, row := range rows {
		if row.Gate != "ok" {
			t.Errorf("%s: gate %q, want ok", row.Name, row.Gate)
		}
	}
}

// TestDiffConfigMismatch: comparing reports from different benchmark
// configurations must be an error, not a silent bogus comparison.
func TestDiffConfigMismatch(t *testing.T) {
	baseline := syntheticReport(1, 100_000_000)
	other := syntheticReport(1, 100_000_000)
	other.Config = "dim=768 psteps=50 vgrid=21 ae=5x30 seed=1"
	if _, _, err := diff(baseline, other, 0.25); err == nil {
		t.Fatal("expected config-mismatch error")
	}
}

// TestDiffNewAndMissingEntriesDoNotGate: renamed benchmarks report as
// missing/new but never fail the build.
func TestDiffNewAndMissingEntriesDoNotGate(t *testing.T) {
	baseline := syntheticReport(1, 100_000_000)
	current := syntheticReport(1, 100_000_000)
	current.Entries[1].Name = "encode_renamed"
	rows, regressions, err := diff(baseline, current, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("rename flagged as regression: %v", regressions)
	}
	var sawMissing, sawNew bool
	for _, row := range rows {
		if row.Name == "encode" && row.Gate == "missing" {
			sawMissing = true
		}
		if row.Name == "encode_renamed" && row.Gate == "new" {
			sawNew = true
		}
	}
	if !sawMissing || !sawNew {
		t.Fatalf("missing=%v new=%v, want both reported", sawMissing, sawNew)
	}
}
