// Command encodersmoke is the CI conformance gate for the pluggable
// encoder backends: it boots the stub encode server (the versioned wire
// format over loopback HTTP) around a hash encoder, runs the remote
// backend and the local hash encoder over OC3-FO, and demands
// bit-identical signature matrices AND identical end-to-end collaborative
// scoping verdicts. It then re-encodes through the warmed signature cache
// and demands zero additional requests. Any deviation exits non-zero, so
// `make encoder-smoke` can gate merges.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"

	"collabscope/internal/core"
	"collabscope/internal/datasets"
	"collabscope/internal/embed"
	"collabscope/internal/encoder"
	"collabscope/internal/schema"
)

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "encodersmoke:", err)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fatal(fmt.Errorf(format, args...))
}

const dim = 256

func main() {
	d := datasets.OC3FO()
	hash := embed.NewHashEncoder(embed.WithDim(dim))

	stub := encoder.NewStubServer(embed.NewHashEncoder(embed.WithDim(dim)))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	fatal(err)
	hs := &http.Server{Handler: stub}
	go hs.Serve(ln) //nolint:errcheck — Serve returns ErrServerClosed on shutdown
	defer hs.Close()

	remote, err := encoder.New("remote:http://"+ln.Addr().String(), encoder.Config{Dim: dim})
	fatal(err)

	local, err := embed.EncodeSchemasContext(context.Background(), 0, hash, d.Schemas)
	fatal(err)
	cold, err := embed.EncodeSchemasContext(context.Background(), 0, remote, d.Schemas)
	fatal(err)
	compare("cold", local, cold)
	coldReqs := stub.Requests()
	if coldReqs == 0 {
		fatalf("cold encode issued no requests — the remote backend never hit the server")
	}

	warm, err := embed.EncodeSchemasContext(context.Background(), 0, remote, d.Schemas)
	fatal(err)
	compare("warm", local, warm)
	if extra := stub.Requests() - coldReqs; extra != 0 {
		fatalf("warm re-encode issued %d requests; the signature cache should absorb all of them", extra)
	}

	// End-to-end verdict conformance: identical signatures must yield
	// identical collaborative-scoping verdicts at a mid-grid variance.
	verdictsLocal := scope(local)
	verdictsRemote := scope(cold)
	if len(verdictsLocal) != len(verdictsRemote) {
		fatalf("verdict counts diverged: %d local vs %d remote", len(verdictsLocal), len(verdictsRemote))
	}
	for id, keep := range verdictsLocal {
		if verdictsRemote[id] != keep {
			fatalf("verdict for %s diverged: local %v, remote %v", id, keep, verdictsRemote[id])
		}
	}

	fmt.Printf("encodersmoke: %d schemas, %d elements, %d cold request(s), 0 warm — backends conformant\n",
		len(d.Schemas), totalLen(local), coldReqs)
}

// scope runs the collaborative-scoping assessment at v = 0.8 and returns
// the per-element linkability verdicts.
func scope(sets []*embed.SignatureSet) map[schema.ElementID]bool {
	scoper, err := core.NewScoper(sets)
	fatal(err)
	keep, err := scoper.ScopeContext(context.Background(), 0.8)
	fatal(err)
	return keep
}

func totalLen(sets []*embed.SignatureSet) int {
	n := 0
	for _, s := range sets {
		n += s.Len()
	}
	return n
}

func compare(arm string, want, got []*embed.SignatureSet) {
	if len(want) != len(got) {
		fatalf("%s: schema counts diverged: %d vs %d", arm, len(want), len(got))
	}
	for k := range want {
		if want[k].Len() != got[k].Len() {
			fatalf("%s: schema %d element counts diverged: %d vs %d", arm, k, want[k].Len(), got[k].Len())
		}
		for i := 0; i < want[k].Len(); i++ {
			if want[k].IDs[i] != got[k].IDs[i] {
				fatalf("%s: schema %d id %d diverged: %s vs %s", arm, k, i, want[k].IDs[i], got[k].IDs[i])
			}
			a, b := want[k].Matrix.RowView(i), got[k].Matrix.RowView(i)
			for j := range a {
				if a[j] != b[j] {
					fatalf("%s: signature of %s differs at dimension %d (%v vs %v)",
						arm, want[k].IDs[i], j, a[j], b[j])
				}
			}
		}
	}
}
