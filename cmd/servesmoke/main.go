// Command servesmoke is the CI smoke test for the scoping service: it
// boots a hub with a persistent registry on a loopback listener, uploads
// freshly trained models through POST /v1/models, assesses signatures
// through POST /v1/assess, restarts the hub over the same registry
// directory to confirm the verdicts survive, and scrapes /v1/metrics.
// Any deviation exits non-zero, so `make serve-smoke` can gate merges.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"time"

	"collabscope/internal/core"
	"collabscope/internal/embed"
	"collabscope/internal/exchange"
	"collabscope/internal/obs"
	"collabscope/internal/synth"
)

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke:", err)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fatal(fmt.Errorf(format, args...))
}

// serve boots a hub over the registry directory and returns the server,
// its base URL, and a shutdown func.
func serve(reg *obs.Registry, dir string) (*exchange.Server, string, func()) {
	srv, err := exchange.NewServer(
		exchange.WithServerMetrics(reg),
		exchange.WithRegistryDir(dir),
		exchange.WithAdmission(exchange.AdmissionConfig{QueueDepth: 16}),
	)
	fatal(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	fatal(err)
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck — Serve returns ErrServerClosed on shutdown
	return srv, "http://" + ln.Addr().String(), func() { fatal(hs.Close()) }
}

// probe GETs a health route and returns the status code plus the decoded
// HealthResponse.
func probe(base, route string) (int, exchange.HealthResponse) {
	resp, err := http.Get(base + route)
	fatal(err)
	defer resp.Body.Close()
	var hr exchange.HealthResponse
	fatal(json.NewDecoder(resp.Body).Decode(&hr))
	return resp.StatusCode, hr
}

// expectHealth asserts one probe outcome.
func expectHealth(base, route string, wantCode int, wantStatus string) {
	code, hr := probe(base, route)
	if code != wantCode || hr.Status != wantStatus {
		fatalf("%s answered %d %q, want %d %q", route, code, hr.Status, wantCode, wantStatus)
	}
}

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "servesmoke-registry-*")
	fatal(err)
	defer os.RemoveAll(dir)

	reg := obs.NewRegistry()
	_, base, stop := serve(reg, dir)

	// Health surface: alive and ready before any model is uploaded.
	expectHealth(base, "/v1/healthz", http.StatusOK, "ok")
	expectHealth(base, "/v1/readyz", http.StatusOK, "ok")
	fmt.Println("servesmoke: healthz/readyz probes OK")

	// Mint one tenant's schemas, train a model per schema, and upload them
	// all through the versioned API.
	scenarios, err := synth.MintTenants(1, synth.Config{Schemas: 3, Seed: 7})
	fatal(err)
	tenant := scenarios[0].Tenant
	enc := embed.NewHashEncoder(embed.WithDim(96))
	sets := embed.EncodeSchemas(enc, scenarios[0].Dataset.Schemas)
	client := exchange.NewClient()
	var models []*core.Model
	for _, set := range sets {
		m, err := core.Train(set, 0.8)
		fatal(err)
		ur, err := client.Upload(ctx, base, tenant, m)
		fatal(err)
		if ur.Version != 1 {
			fatalf("upload of %s registered version %d, want 1", m.Schema, ur.Version)
		}
		models = append(models, m)
	}
	fmt.Printf("servesmoke: uploaded %d models into tenant %s\n", len(models), tenant)

	// Assess the first schema's own signatures against its tenant peers.
	req := &exchange.AssessRequest{
		Schema:     models[0].Schema,
		IDs:        make([]string, sets[0].Len()),
		Signatures: make([][]float64, sets[0].Len()),
	}
	for i := range req.IDs {
		req.IDs[i] = sets[0].IDs[i].String()
		req.Signatures[i] = sets[0].Matrix.RowView(i)
	}
	res, err := client.Assess(ctx, base, tenant, req)
	fatal(err)
	if len(res.Used) != len(models)-1 {
		fatalf("assessed against %d models, want the %d foreign ones", len(res.Used), len(models)-1)
	}
	linkable := 0
	for _, v := range res.Verdicts {
		if v.Linkable {
			linkable++
		}
	}
	fmt.Printf("servesmoke: assessed %d elements (%d linkable) against %d foreign models\n",
		len(res.Verdicts), linkable, len(res.Used))

	// Restart the hub over the same registry directory: the verdicts must
	// come back bit-identical without re-uploading anything.
	stop()
	srv2, base2, stop2 := serve(obs.NewRegistry(), dir)
	defer stop2()
	res2, err := exchange.NewClient().Assess(ctx, base2, tenant, req)
	fatal(err)
	if !reflect.DeepEqual(res.Verdicts, res2.Verdicts) || !reflect.DeepEqual(res.Used, res2.Used) {
		fatalf("restarted hub answered differently:\n%+v\nvs\n%+v", res, res2)
	}
	fmt.Println("servesmoke: restart over the persisted registry reproduced the verdicts")

	// Scrape the metrics route of the first hub's registry snapshot.
	resp, err := http.Get(base2 + "/v1/metrics")
	fatal(err)
	snap, err := obs.ReadSnapshotJSON(resp.Body)
	resp.Body.Close()
	fatal(err)
	if snap.Counters["service.requests"] < 1 {
		fatalf("metrics snapshot records %d assess requests, want ≥ 1", snap.Counters["service.requests"])
	}
	fmt.Println("servesmoke: /v1/metrics scrape OK")

	// Drain phase: the restarted hub drains cleanly — readiness flips to
	// 503, new work is refused with the typed draining error, liveness
	// stays green, and GET routes keep serving.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	fatal(srv2.Drain(dctx))
	expectHealth(base2, "/v1/healthz", http.StatusOK, "ok")
	expectHealth(base2, "/v1/readyz", http.StatusServiceUnavailable, "draining")
	body, err := json.Marshal(req)
	fatal(err)
	resp, err = http.Post(base2+"/v1/assess", "application/json", bytes.NewReader(body))
	fatal(err)
	var envelope exchange.ErrorEnvelope
	fatal(json.NewDecoder(resp.Body).Decode(&envelope))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || envelope.Error.Code != exchange.CodeDraining {
		fatalf("assess on a draining hub answered %d %q, want %d %q",
			resp.StatusCode, envelope.Error.Code, http.StatusServiceUnavailable, exchange.CodeDraining)
	}
	if resp.Header.Get("Retry-After") == "" {
		fatalf("draining hub sent no Retry-After header")
	}
	mreq, err := http.NewRequest(http.MethodGet, base2+"/v1/models/"+models[0].Schema, nil)
	fatal(err)
	mreq.Header.Set(exchange.TenantHeader, tenant)
	mresp, err := http.DefaultClient.Do(mreq)
	fatal(err)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		fatalf("draining hub stopped serving models: status %d", mresp.StatusCode)
	}
	fmt.Println("servesmoke: drain phase OK (readyz 503, typed refusals, GETs still served)")
	fmt.Println("servesmoke: PASS")
}
