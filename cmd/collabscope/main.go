// Command collabscope runs collaborative scoping and schema matching over
// schema files (.sql DDL or .json).
//
// Usage:
//
//	collabscope stats  s1.sql s2.sql ...
//	collabscope stats  -metrics http://host:8080/metrics
//	collabscope scope  -v 0.8 [-out dir] s1.sql s2.json ...
//	collabscope scope  -method global -detector pca:0.5 -p 0.7 s1.sql s2.sql
//	collabscope match  -matcher lsh:5 [-scope 0.8] s1.sql s2.sql ...
//	collabscope eval   -truth links.json -matcher sim:0.6 -v 0.8 s1.sql s2.sql
//	collabscope serve  -addr 127.0.0.1:8080 -v 0.8 [-registry dir] [-pprof] s1.sql
//	collabscope fetch  -peers http://host1:8080,http://host2:8080 [-out dir]
//	collabscope assess -peers http://host1:8080 s1.sql
//	collabscope assess -server http://hub:8080 [-tenant t] s1.sql
//	collabscope push   -server http://hub:8080 -models a.model.json,b.model.json
//
// Schema files ending in .sql are parsed as CREATE TABLE DDL (the schema is
// named after the file); .json files use the schema JSON format.
//
// serve runs the scoping service: it trains the given schemas' models (if
// any), publishes them at /v1/models/<schema> (wire format v1, content-hash
// ETags; /models/<schema> stays as an alias), accepts model uploads at
// POST /v1/models, and answers linkability queries at POST /v1/assess —
// with -registry, the uploaded registry survives restarts. fetch harvests
// peers' models to files, tolerating flaky peers; assess accepts -models
// files, -peers hubs, a -server scoping service, or a mix; push uploads
// trained model files into a running service's registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"collabscope"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "stats":
		runStats(args)
	case "scope":
		runScope(args)
	case "match":
		runMatch(args)
	case "eval":
		runEval(args)
	case "train":
		runTrain(args)
	case "update":
		runUpdate(args)
	case "assess":
		runAssess(args)
	case "integrate":
		runIntegrate(args)
	case "suggest":
		runSuggest(args)
	case "serve":
		runServe(args)
	case "fetch":
		runFetch(args)
	case "push":
		runPush(args)
	default:
		usage()
	}
}

// runServe runs the scoping service: train the local model(s), publish
// them, and serve the /v1 API (uploads, assess hot path, metrics) until
// killed. With -registry, uploads and published models survive restarts.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	v := fs.Float64("v", 0.8, "global explained variance")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	registry := fs.String("registry", "", "persist the model registry in this directory (survives restarts)")
	queue := fs.Int("queue", 0, "max concurrent assess computations before 429 load shedding (default 64)")
	tenantQuota := fs.Int("tenant-quota", 0, "per-tenant in-flight assess cap (default: -queue)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work on SIGTERM before it is cancelled")
	pf := pipelineFlags(fs)
	fs.Parse(args)
	if len(fs.Args()) == 0 && *registry == "" {
		fatalf("no schema files given (serving an empty registry needs -registry so uploads persist)")
	}

	reg := collabscope.NewMetrics()
	pipe := pf.build(collabscope.WithMetrics(reg))
	var models []*collabscope.Model
	for _, s := range loadSchemasOptional(fs.Args()) {
		m, err := pipe.TrainModel(s, *v)
		fatal(err)
		models = append(models, m)
		fmt.Printf("trained %s: %d components at v=%.2f, linkability range %.4g\n",
			s.Name, m.Components(), *v, m.Range)
	}
	opts := []collabscope.ServerOption{
		collabscope.WithServerModels(models...),
		collabscope.WithServerMetrics(reg),
		collabscope.WithServerAdmission(collabscope.AdmissionConfig{
			QueueDepth: *queue, TenantQuota: *tenantQuota,
		}),
	}
	if *pf.workers > 0 {
		opts = append(opts, collabscope.WithServerWorkers(*pf.workers))
	}
	if *registry != "" {
		opts = append(opts, collabscope.WithServerRegistry(*registry))
	}
	if *pprofFlag {
		opts = append(opts, collabscope.WithServerPprof())
	}
	handler, err := collabscope.NewScopingServer(opts...)
	fatal(err)
	ln, err := net.Listen("tcp", *addr)
	fatal(err)
	fmt.Printf("serving %d model(s) at http://%s/v1/models (assess at POST http://%s/v1/assess)\n",
		len(handler.Schemas()), ln.Addr(), ln.Addr())
	fmt.Printf("metrics snapshot at http://%s/v1/metrics (view with `collabscope stats -metrics http://%s/v1/metrics`)\n",
		ln.Addr(), ln.Addr())
	if *registry != "" {
		fmt.Printf("registry persisted in %s\n", *registry)
	}
	if *pprofFlag {
		fmt.Printf("pprof enabled at http://%s/debug/pprof/\n", ln.Addr())
	}

	// Serve until SIGTERM/SIGINT, then drain: readiness flips to 503 and new
	// work is refused immediately, in-flight flights get -drain-timeout to
	// finish, the registry manifest is flushed, and only then does the
	// listener close — the graceful-rollout contract of DESIGN.md §14.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "collabscope: shutdown signal received, draining")
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := handler.Drain(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "collabscope: drain: %v\n", err)
		}
		if err := hs.Shutdown(dctx); err != nil {
			_ = hs.Close()
		}
		fmt.Fprintln(os.Stderr, "collabscope: drained")
	}
}

// runPush uploads trained model files into a running service's registry.
func runPush(args []string) {
	fs := flag.NewFlagSet("push", flag.ExitOnError)
	server := fs.String("server", "", "scoping service base URL (required)")
	modelsArg := fs.String("models", "", "comma-separated model files to upload (required)")
	tenant := fs.String("tenant", "", "tenant namespace (default: the hub's default tenant)")
	fs.Parse(args)
	if *server == "" || *modelsArg == "" {
		fatalf("-server and -models are required")
	}
	pipe := collabscope.New()
	for _, path := range strings.Split(*modelsArg, ",") {
		fh, err := os.Open(strings.TrimSpace(path))
		fatal(err)
		m, err := collabscope.ReadModelJSON(fh)
		fatal(err)
		fatal(fh.Close())
		fatal(pipe.UploadModel(context.Background(), *server, *tenant, m))
		fmt.Printf("uploaded %s (%d components, range %.4g) -> %s\n",
			m.Schema, m.Components(), m.Range, *server)
	}
}

// runFetch implements the consumer side: harvest peers' models into files,
// keeping whatever healthy peers provide and reporting the rest.
func runFetch(args []string) {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	peersArg := fs.String("peers", "", "comma-separated peer base URLs (required)")
	out := fs.String("out", ".", "directory to write <schema>.model.json files into")
	retries := fs.Int("retries", 0, "attempts per request (default 3)")
	timeout := fs.Duration("timeout", 0, "per-request timeout (default 5s)")
	fs.Parse(args)
	if *peersArg == "" {
		fatalf("-peers is required")
	}

	pipe := collabscope.New(collabscope.WithRetryPolicy(collabscope.RetryPolicy{
		MaxAttempts: *retries, Timeout: *timeout,
	}))
	models, failed := pipe.FetchModels(context.Background(), splitPeers(*peersArg))
	fatal(os.MkdirAll(*out, 0o755))
	for _, m := range models {
		path := filepath.Join(*out, m.Schema+".model.json")
		fh, err := os.Create(path)
		fatal(err)
		fatal(m.WriteJSON(fh))
		fatal(fh.Close())
		fmt.Printf("fetched %s (%d components, range %.4g) -> %s\n",
			m.Schema, m.Components(), m.Range, path)
	}
	for _, pe := range failed {
		fmt.Fprintf(os.Stderr, "collabscope: peer failed: %s\n", pe)
	}
	if len(models) == 0 && len(failed) > 0 {
		fatalf("no peer delivered a model")
	}
}

func splitPeers(arg string) []string {
	var peers []string
	for _, p := range strings.Split(arg, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// runSuggest proposes an explained-variance setting label-free.
func runSuggest(args []string) {
	fs := flag.NewFlagSet("suggest", flag.ExitOnError)
	pf := pipelineFlags(fs)
	fs.Parse(args)

	schemas := loadSchemas(fs.Args())
	pipe := pf.build()
	v, err := pipe.SuggestVariance(schemas, nil)
	fatal(err)
	res, err := pipe.CollaborativeScope(schemas, v)
	fatal(err)
	fmt.Printf("suggested explained variance v=%.2f (keeps %d of %d elements)\n",
		v, res.Kept, res.Kept+res.Pruned)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: collabscope <stats|scope|match|eval|train|update|assess|integrate|suggest|serve|fetch|push> [flags] schema files...")
	os.Exit(2)
}

// runIntegrate scopes, matches, clusters the linkages, and emits a mediated
// schema with UNION ALL view skeletons.
func runIntegrate(args []string) {
	fs := flag.NewFlagSet("integrate", flag.ExitOnError)
	matcher := fs.String("matcher", "sim:0.6",
		"matcher: "+strings.Join(collabscope.Matchers(), ", ")+" (name or name:param)")
	scopeV := fs.Float64("scope", 0.5, "collaborative scoping variance (0 = integrate originals)")
	pf := pipelineFlags(fs)
	fs.Parse(args)

	schemas := loadSchemas(fs.Args())
	pipe := pf.build()
	target := schemas
	if *scopeV > 0 {
		res, err := pipe.CollaborativeScope(schemas, *scopeV)
		fatal(err)
		target = res.Streamlined
		fmt.Printf("scoped at v=%.2f: kept %d, pruned %d\n", *scopeV, res.Kept, res.Pruned)
	}
	pairs := pipe.Match(parseMatcher(*matcher), target)
	fmt.Printf("%d linkage candidates\n\n", len(pairs))

	med := collabscope.BuildMediated(schemas, pairs)
	for _, mt := range med.Tables {
		fmt.Println(collabscope.UnionView(mt))
		fmt.Println()
	}
}

// runTrain implements the distributed workflow's producer side: train the
// local model (Algorithm 1) and write it to a file for exchange.
func runTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	v := fs.Float64("v", 0.8, "global explained variance")
	out := fs.String("out", "", "model output file (default <schema>.model.json)")
	pf := pipelineFlags(fs)
	fs.Parse(args)

	schemas := loadSchemas(fs.Args())
	if len(schemas) != 1 {
		fatalf("train expects exactly one schema file")
	}
	pipe := pf.build()
	model, err := pipe.TrainModel(schemas[0], *v)
	fatal(err)

	path := *out
	if path == "" {
		path = schemas[0].Name + ".model.json"
	}
	fh, err := os.Create(path)
	fatal(err)
	fatal(model.WriteJSON(fh))
	fatal(fh.Close())
	fmt.Printf("trained %s: %d components at v=%.2f, linkability range %.4g -> %s\n",
		schemas[0].Name, model.Components(), *v, model.Range, path)
}

// runUpdate implements incremental maintenance for evolving schemas: the
// training state (rows + sufficient statistics) persists in -state, each
// run applies the schema file as a diff against it, and only the delta is
// re-accumulated before the model is retrained and written — so a DDL
// change costs one state diff instead of a cold retrain pipeline. With
// -push the refreshed model is republished, bumping its registry version
// so peers and the scoping service delta-assess against it.
func runUpdate(args []string) {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	v := fs.Float64("v", 0.8, "global explained variance")
	state := fs.String("state", "", "state directory holding the incremental training state (required)")
	out := fs.String("out", "", "model output file (default <schema>.model.json)")
	push := fs.String("push", "", "scoping service base URL: also republish the refreshed model")
	tenant := fs.String("tenant", "", "tenant namespace for -push (default: the hub's default tenant)")
	pf := pipelineFlags(fs)
	fs.Parse(args)
	if *state == "" {
		fatalf("-state is required (it holds the incremental training state between runs)")
	}

	schemas := loadSchemas(fs.Args())
	if len(schemas) != 1 {
		fatalf("update expects exactly one schema file")
	}
	pipe := pf.build()
	up, err := pipe.UpdateModel(schemas[0], *v, *state)
	fatal(err)

	path := *out
	if path == "" {
		path = schemas[0].Name + ".model.json"
	}
	fh, err := os.Create(path)
	fatal(err)
	fatal(up.Model.WriteJSON(fh))
	fatal(fh.Close())
	if up.Resumed {
		fmt.Printf("updated %s: +%d -%d ~%d elements, state version %d -> %s\n",
			schemas[0].Name, up.Added, up.Removed, up.Changed, up.Version, path)
	} else {
		fmt.Printf("initialised %s: %d elements, state version %d -> %s\n",
			schemas[0].Name, up.Added, up.Version, path)
	}
	if *push != "" {
		fatal(pipe.UploadModel(context.Background(), *push, *tenant, up.Model))
		fmt.Printf("republished %s (%d components, range %.4g) -> %s\n",
			up.Model.Schema, up.Model.Components(), up.Model.Range, *push)
	}
}

// runAssess implements the consumer side: assess the local schema against
// exchanged foreign models (Algorithm 2) and report/stream the verdicts.
func runAssess(args []string) {
	fs := flag.NewFlagSet("assess", flag.ExitOnError)
	modelsArg := fs.String("models", "", "comma-separated foreign model files")
	peersArg := fs.String("peers", "", "comma-separated peer base URLs to fetch foreign models from")
	server := fs.String("server", "", "scoping service base URL: assess via its POST /v1/assess hot path")
	tenant := fs.String("tenant", "", "tenant namespace for -server (default: the hub's default tenant)")
	out := fs.String("out", "", "write the streamlined schema as JSON to this file")
	delta := fs.Bool("delta", false, "delta assessment: persist per-model score columns in -state and re-score only models that changed since the last run")
	state := fs.String("state", "", "state directory for -delta score columns")
	pf := pipelineFlags(fs)
	fs.Parse(args)
	if *modelsArg == "" && *peersArg == "" && *server == "" {
		fatalf("-models, -peers or -server is required")
	}
	if *delta && *state == "" {
		fatalf("-delta needs -state to persist score columns between runs")
	}
	if *delta && *server != "" {
		fatalf("-delta is a local-assessment flag; the hub runs its own delta cache on /v1/assess")
	}

	schemas := loadSchemas(fs.Args())
	if len(schemas) != 1 {
		fatalf("assess expects exactly one schema file")
	}
	local := schemas[0]
	pipe := pf.build()

	// Service-side assessment: signatures travel to the hub, which runs
	// Algorithm 2 against its registry. Otherwise models are gathered
	// locally (files and/or peer fetches) and assessed in process. Either
	// way the result is the shared Assessment shape, rendered identically.
	var assessment *collabscope.Assessment
	if *server != "" {
		if *modelsArg != "" || *peersArg != "" {
			fatalf("-server assesses against the hub's registry; it cannot be mixed with -models/-peers")
		}
		res, err := pipe.AssessServer(context.Background(), local, *server, *tenant)
		fatal(err)
		if len(res.Used) == 0 {
			fatalf("the hub holds no foreign models for %s (upload some with `collabscope push`)", local.Name)
		}
		assessment = &res.Assessment
	} else {
		var models []*collabscope.Model
		if *modelsArg != "" {
			for _, path := range strings.Split(*modelsArg, ",") {
				fh, err := os.Open(strings.TrimSpace(path))
				fatal(err)
				m, err := collabscope.ReadModelJSON(fh)
				fatal(err)
				fatal(fh.Close())
				models = append(models, m)
			}
		}
		if *peersArg != "" {
			fetched, failed := pipe.FetchModels(context.Background(), splitPeers(*peersArg))
			for _, pe := range failed {
				fmt.Fprintf(os.Stderr, "collabscope: peer failed, assessing without it: %s\n", pe)
			}
			models = append(models, fetched...)
		}
		// Drop any model published under the local schema's own name:
		// Algorithm 2 assesses against foreign models only.
		foreign := models[:0]
		var used []string
		for _, m := range models {
			if m.Schema != local.Name {
				foreign = append(foreign, m)
				used = append(used, m.Schema)
			}
		}
		if len(foreign) == 0 {
			fatalf("no foreign models available (all peers failed?)")
		}
		if *delta {
			verdicts, rep, err := pipe.AssessDeltaState(local, foreign, *state)
			fatal(err)
			fmt.Printf("delta assessment: %d passes re-scored, %d reused\n", rep.Rescored, rep.Reused)
			assessment = &collabscope.Assessment{Verdicts: verdicts, Used: used}
		} else {
			assessment = &collabscope.Assessment{Verdicts: pipe.Assess(local, foreign), Used: used}
		}
	}

	streamlined := local.Subset(assessment.Verdicts)
	fmt.Printf("%s: %d -> %d elements (assessed against %s)\n", local.Name,
		local.NumElements(), streamlined.NumElements(), strings.Join(assessment.Used, ", "))
	for _, v := range assessment.List() {
		if !v.Linkable {
			fmt.Printf("  pruned %s\n", v.Element)
		}
	}
	if *out != "" {
		fh, err := os.Create(*out)
		fatal(err)
		fatal(streamlined.WriteJSON(fh))
		fatal(fh.Close())
		fmt.Printf("streamlined schema written to %s\n", *out)
	}
}

func loadSchemas(paths []string) []*collabscope.Schema {
	if len(paths) == 0 {
		fatalf("no schema files given")
	}
	return loadSchemasOptional(paths)
}

// loadSchemasOptional is loadSchemas for subcommands where zero schema
// files is legitimate (`serve -registry` starts from the persisted
// registry alone).
func loadSchemasOptional(paths []string) []*collabscope.Schema {
	var out []*collabscope.Schema
	for _, p := range paths {
		data, err := os.ReadFile(p)
		fatal(err)
		base := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		var s *collabscope.Schema
		switch strings.ToLower(filepath.Ext(p)) {
		case ".json":
			s, err = collabscope.ReadSchemaJSON(strings.NewReader(string(data)))
		default:
			s, err = collabscope.ParseDDL(base, string(data))
		}
		fatal(err)
		out = append(out, s)
	}
	return out
}

func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	metricsSrc := fs.String("metrics", "",
		"print a metrics snapshot instead of schema stats: a hub's /metrics URL or a snapshot JSON file")
	fs.Parse(args)
	if *metricsSrc != "" {
		printMetrics(*metricsSrc)
		return
	}
	schemas := loadSchemas(fs.Args())
	fmt.Printf("%-20s %7s %11s %9s\n", "Schema", "Tables", "Attributes", "Elements")
	for _, s := range schemas {
		fmt.Printf("%-20s %7d %11d %9d\n", s.Name, s.NumTables(), s.NumAttributes(), s.NumElements())
	}
}

// printMetrics renders a metrics snapshot fetched from a running hub's
// /metrics endpoint (http:// or https:// source) or read from a JSON file.
func printMetrics(src string) {
	var r io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		fatal(err)
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			fatalf("GET %s: status %d (is the hub running with metrics enabled?)", src, resp.StatusCode)
		}
		r = resp.Body
	} else {
		fh, err := os.Open(src)
		fatal(err)
		r = fh
	}
	defer r.Close()
	snap, err := collabscope.ReadMetricsSnapshotJSON(r)
	fatal(err)
	snap.Fprint(os.Stdout)
}

func runScope(args []string) {
	fs := flag.NewFlagSet("scope", flag.ExitOnError)
	v := fs.Float64("v", 0.8, "global explained variance for collaborative scoping")
	method := fs.String("method", "collaborative", "scoping method: collaborative or global")
	detector := fs.String("detector", "pca:0.5",
		"global scoping detector: "+strings.Join(collabscope.Detectors(), ", ")+" (name or name:param)")
	p := fs.Float64("p", 0.7, "global scoping keep fraction")
	out := fs.String("out", "", "write streamlined schemas as JSON into this directory")
	pf := pipelineFlags(fs)
	fs.Parse(args)

	schemas := loadSchemas(fs.Args())
	pipe := pf.build()

	var res *collabscope.ScopeResult
	var err error
	switch *method {
	case "collaborative":
		res, err = pipe.CollaborativeScope(schemas, *v)
	case "global":
		res, err = pipe.GlobalScope(schemas, parseDetector(*detector), *p)
	default:
		fatalf("unknown method %q", *method)
	}
	fatal(err)

	fmt.Printf("kept %d elements, pruned %d\n", res.Kept, res.Pruned)
	for i, s := range schemas {
		st := res.Streamlined[i]
		fmt.Printf("%-20s %3d -> %3d elements\n", s.Name, s.NumElements(), st.NumElements())
		for _, id := range s.ElementIDs() {
			if !res.Keep[id] {
				fmt.Printf("  pruned %s\n", id)
			}
		}
	}
	if *out != "" {
		fatal(os.MkdirAll(*out, 0o755))
		for _, s := range res.Streamlined {
			fh, err := os.Create(filepath.Join(*out, s.Name+".json"))
			fatal(err)
			fatal(s.WriteJSON(fh))
			fatal(fh.Close())
		}
		fmt.Printf("streamlined schemas written to %s\n", *out)
	}
}

func runMatch(args []string) {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	matcher := fs.String("matcher", "lsh:5",
		"matcher: "+strings.Join(collabscope.Matchers(), ", ")+" (name or name:param)")
	scopeV := fs.Float64("scope", 0, "collaboratively scope at this variance before matching (0 = off)")
	pf := pipelineFlags(fs)
	indexed := indexFlags(fs)
	fs.Parse(args)

	schemas := loadSchemas(fs.Args())
	pipe := pf.build()
	target := schemas
	if *scopeV > 0 {
		res, err := pipe.CollaborativeScope(schemas, *scopeV)
		fatal(err)
		target = res.Streamlined
		fmt.Printf("scoped at v=%.2f: kept %d, pruned %d\n", *scopeV, res.Kept, res.Pruned)
	}
	pairs := pipe.Match(indexed(*matcher), target)
	for _, pr := range pairs {
		fmt.Printf("%s ~ %s\n", pr.A, pr.B)
	}
	fmt.Printf("%d candidate linkages\n", len(pairs))
}

func runEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	truthPath := fs.String("truth", "", "ground-truth linkages JSON file (required)")
	matcher := fs.String("matcher", "lsh:5",
		"matcher: "+strings.Join(collabscope.Matchers(), ", ")+" (name or name:param)")
	scopeV := fs.Float64("v", 0.8, "collaborative scoping variance (0 = match originals)")
	pf := pipelineFlags(fs)
	indexed := indexFlags(fs)
	fs.Parse(args)
	if *truthPath == "" {
		fatalf("-truth is required")
	}

	schemas := loadSchemas(fs.Args())
	data, err := os.ReadFile(*truthPath)
	fatal(err)
	truth, err := readTruth(string(data))
	fatal(err)

	pipe := pf.build()
	m := indexed(*matcher)

	sota := collabscope.EvaluateMatch(pipe.Match(m, schemas), truth, schemas)
	fmt.Printf("original   : PQ=%.3f PC=%.3f F1=%.3f RR=%.3f (%d pairs)\n",
		sota.PQ, sota.PC, sota.F1, sota.RR, sota.Generated)
	if *scopeV > 0 {
		res, err := pipe.CollaborativeScope(schemas, *scopeV)
		fatal(err)
		scoped := collabscope.EvaluateMatch(pipe.Match(m, res.Streamlined), truth, schemas)
		fmt.Printf("scoped v=%.2f: PQ=%.3f PC=%.3f F1=%.3f RR=%.3f (%d pairs)\n",
			*scopeV, scoped.PQ, scoped.PC, scoped.F1, scoped.RR, scoped.Generated)
	}
}

// pipelineSpec holds the parsed pipeline flags every subcommand shares;
// build resolves them into a pipeline after flag parsing.
type pipelineSpec struct {
	dim, workers                  *int
	encSpec, encCache, enrichSpec *string
}

// pipelineFlags registers the flags every subcommand's pipeline shares —
// dimensionality, parallelism, the encoder backend, its signature cache,
// and the enrichment stage.
func pipelineFlags(fs *flag.FlagSet) *pipelineSpec {
	return &pipelineSpec{
		dim:        fs.Int("dim", 0, "signature dimensionality (default 768)"),
		workers:    fs.Int("workers", 0, "worker-pool parallelism (default GOMAXPROCS)"),
		encSpec:    fs.String("encoder", "", "encoder backend: hash (default), or remote:<url>"),
		encCache:   fs.String("encoder-cache", "", "directory persisting the remote encoder's signature cache across runs"),
		enrichSpec: fs.String("enrich", "", "comma-separated enrichers applied before encoding: lexicon, fk (default none)"),
	}
}

func (ps *pipelineSpec) build(extra ...collabscope.Option) *collabscope.Pipeline {
	var opts []collabscope.Option
	if *ps.dim > 0 {
		opts = append(opts, collabscope.WithDimension(*ps.dim))
	}
	if *ps.workers > 0 {
		opts = append(opts, collabscope.WithParallelism(*ps.workers))
	}
	if *ps.encSpec != "" {
		opts = append(opts, collabscope.WithEncoderBackend(*ps.encSpec))
	}
	if *ps.encCache != "" {
		opts = append(opts, collabscope.WithEncoderCache(*ps.encCache))
	}
	enrichers, err := collabscope.ParseEnrichers(*ps.enrichSpec)
	fatal(err)
	if len(enrichers) > 0 {
		opts = append(opts, collabscope.WithEnrichers(enrichers...))
	}
	return collabscope.New(append(opts, extra...)...)
}

// indexFlags registers the ANN index-backend flags of the lsh matcher
// family (sublinear search at 10⁵+ signatures). The returned function
// resolves a matcher spec together with the parsed flags: -index rewrites
// an lsh-family name to the chosen backend, and the parameter flags flow
// through WithIndexConfig so they are validated at construction instead of
// being silently discarded.
func indexFlags(fs *flag.FlagSet) func(spec string) collabscope.Matcher {
	kind := fs.String("index", "", "index backend for lsh-family matchers: flat, lsh, hnsw, ivf")
	tables := fs.Int("lsh-tables", 0, "lsh index: hash tables (default 8)")
	bits := fs.Int("lsh-bits", 0, "lsh index: hash bits per table (default 12)")
	m := fs.Int("hnsw-m", 0, "hnsw index: max links per node (default 16)")
	efc := fs.Int("hnsw-efc", 0, "hnsw index: construction beam width (default 128)")
	ef := fs.Int("hnsw-ef", 0, "hnsw index: search beam width (default 64)")
	nlists := fs.Int("ivf-nlists", 0, "ivf index: k-means cells (default ⌈√n⌉)")
	nprobe := fs.Int("ivf-nprobe", 0, "ivf index: cells scanned per query (default nlists/8)")
	seed := fs.Int64("index-seed", 0, "index construction seed (default 1)")
	return func(spec string) collabscope.Matcher {
		if *kind != "" {
			k, err := collabscope.ParseIndexKind(*kind)
			fatal(err)
			spec = reindexSpec(spec, k)
		}
		cfg := collabscope.IndexConfig{
			Tables: *tables, Bits: *bits,
			M: *m, EfConstruction: *efc, EfSearch: *ef,
			NLists: *nlists, NProbe: *nprobe, Seed: *seed,
		}
		mt, err := collabscope.ParseMatcher(spec, collabscope.WithIndexConfig(cfg))
		fatal(err)
		return mt
	}
}

// indexKindNames maps a backend to its lsh-family registry name.
var indexKindNames = map[collabscope.IndexKind]string{
	collabscope.IndexFlat: "lsh",
	collabscope.IndexLSH:  "lsh-approx",
	collabscope.IndexHNSW: "lsh-hnsw",
	collabscope.IndexIVF:  "lsh-ivf",
}

// reindexSpec swaps the registry name of an lsh-family spec for the one
// matching the -index choice, preserving any ":param" suffix.
func reindexSpec(spec string, kind collabscope.IndexKind) string {
	name, param := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, param = spec[:i], spec[i:]
	}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "lsh", "lsh-approx", "lsh-hnsw", "lsh-ivf":
		return indexKindNames[kind] + param
	}
	fatalf("-index applies to the lsh matcher family, not %q", name)
	return ""
}

// parseDetector and parseMatcher resolve "name:param" specs through the
// library's name-keyed registry; the flag→constructor mapping lives there.
func parseDetector(spec string) collabscope.Detector {
	det, err := collabscope.ParseDetector(spec)
	fatal(err)
	return det
}

func parseMatcher(spec string) collabscope.Matcher {
	m, err := collabscope.ParseMatcher(spec)
	fatal(err)
	return m
}

func readTruth(data string) (*collabscope.GroundTruth, error) {
	return collabscope.ReadGroundTruthJSON(strings.NewReader(data))
}

func fatal(err error) {
	if err != nil {
		// Library errors already carry the "collabscope: " prefix.
		if hint := collabscope.ExplainError(err); hint != "" {
			fmt.Fprintf(os.Stderr, "collabscope: %s\ncollabscope: (%s)\n",
				strings.TrimPrefix(err.Error(), "collabscope: "), hint)
			os.Exit(1)
		}
		fatalf("%s", strings.TrimPrefix(err.Error(), "collabscope: "))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "collabscope: "+format+"\n", args...)
	os.Exit(1)
}
