package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"collabscope"
)

func TestParseDetectorSpecs(t *testing.T) {
	cases := map[string]string{
		"zscore":      "Z-Score",
		"lof":         "LOF(n=20)",
		"lof:5":       "LOF(n=5)",
		"pca":         "PCA(v=0.50)",
		"pca:0.7":     "PCA(v=0.70)",
		"autoencoder": "Autoencoder",
		"ae":          "Autoencoder",
		"knn:7":       "kNN(k=7)",
		"mahalanobis": "Mahalanobis",
		"isoforest":   "IsolationForest",
	}
	for spec, want := range cases {
		if got := parseDetector(spec).Name(); got != want {
			t.Errorf("parseDetector(%q) = %q, want %q", spec, got, want)
		}
	}
}

func TestParseMatcherSpecs(t *testing.T) {
	cases := map[string]string{
		"sim:0.4":      "SIM(0.4)",
		"cluster:20":   "CLUSTER(20)",
		"lsh:1":        "LSH(1)",
		"lsh-approx:3": "LSH*(3)",
		"coma:0.5":     "COMA(0.5)",
		"flood:0.8":    "FLOOD(0.8)",
		"name:0.7":     "NAME(0.7)",
		"sim":          "SIM(0.6)",
	}
	for spec, want := range cases {
		if got := parseMatcher(spec).Name(); got != want {
			t.Errorf("parseMatcher(%q) = %q, want %q", spec, got, want)
		}
	}
}

func TestLoadSchemas(t *testing.T) {
	dir := t.TempDir()
	sqlPath := filepath.Join(dir, "crm.sql")
	if err := os.WriteFile(sqlPath, []byte("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10));"), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "shop.json")
	js := `{"name":"shop","tables":[{"name":"u","attributes":[{"name":"x","type":"TEXT"}]}]}`
	if err := os.WriteFile(jsonPath, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	schemas := loadSchemas([]string{sqlPath, jsonPath})
	if len(schemas) != 2 {
		t.Fatalf("loaded %d schemas", len(schemas))
	}
	// DDL schema is named after the file; JSON keeps its embedded name.
	if schemas[0].Name != "crm" || schemas[1].Name != "shop" {
		t.Fatalf("names = %q, %q", schemas[0].Name, schemas[1].Name)
	}
	if schemas[0].NumAttributes() != 2 || schemas[1].NumAttributes() != 1 {
		t.Fatalf("attribute counts wrong")
	}
}

// parsedPipelineFlags registers the shared pipeline flags on a throwaway
// FlagSet and parses the given command line.
func parsedPipelineFlags(t *testing.T, args ...string) *pipelineSpec {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	pf := pipelineFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return pf
}

func TestNewPipelineDims(t *testing.T) {
	if parsedPipelineFlags(t).build().Encoder().Dim() != 768 {
		t.Fatal("default dim should be 768")
	}
	if parsedPipelineFlags(t, "-dim", "128").build().Encoder().Dim() != 128 {
		t.Fatal("dim override failed")
	}
	if parsedPipelineFlags(t, "-workers", "3").build().Parallelism() != 3 {
		t.Fatal("workers override failed")
	}
}

func TestPipelineFlagsEncoderAndEnrich(t *testing.T) {
	// The hash spec resolves with the flagged dimension.
	pf := parsedPipelineFlags(t, "-encoder", "hash", "-dim", "64")
	if pf.build().Encoder().Dim() != 64 {
		t.Fatal("-encoder hash should inherit -dim")
	}
	// Enrichment changes signatures; no enrichment matches the default.
	s, err := collabscope.ParseDDL("crm", "CREATE TABLE CUSTOMERS (CUST_ID INT PRIMARY KEY);")
	if err != nil {
		t.Fatal(err)
	}
	plain := parsedPipelineFlags(t, "-dim", "64").build().Encode(s)
	enriched := parsedPipelineFlags(t, "-dim", "64", "-enrich", "lexicon,fk").build().Encode(s)
	if plain.Len() != enriched.Len() {
		t.Fatalf("element counts diverged: %d vs %d", plain.Len(), enriched.Len())
	}
	same := true
	for i := 0; i < plain.Len() && same; i++ {
		a, b := plain.Matrix.RowView(i), enriched.Matrix.RowView(i)
		for j := range a {
			if a[j] != b[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("-enrich lexicon,fk left every signature unchanged")
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" http://a:8080, ,http://b:9090 ,")
	if len(got) != 2 || got[0] != "http://a:8080" || got[1] != "http://b:9090" {
		t.Fatalf("splitPeers = %v", got)
	}
	if splitPeers("") != nil {
		t.Fatal("empty spec should yield no peers")
	}
}
