// Command benchtables regenerates every table and figure of the paper's
// evaluation section on the re-created datasets.
//
// Usage:
//
//	benchtables -all
//	benchtables -table 4
//	benchtables -figure 7 -csv out/
//	benchtables -discussion
//
// Tables print as aligned text; figures print their data series and can
// also be written as CSV files for plotting.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"collabscope"
	"collabscope/internal/checkpoint"
	"collabscope/internal/datasets"
	"collabscope/internal/experiments"
	"collabscope/internal/metrics"
	"collabscope/internal/outlier"
	"collabscope/internal/schema"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate a table (2, 3, or 4)")
		figure     = flag.Int("figure", 0, "regenerate a figure (3, 5, 6, or 7)")
		discussion = flag.Bool("discussion", false, "regenerate the §4.4 discussion numbers")
		scale      = flag.Bool("scale", false, "run the synthetic scalability experiment (extension)")
		extended   = flag.Bool("extended", false, "include the repository's extra detectors and matchers")
		hetero     = flag.Bool("hetero", false, "run the synthetic heterogeneity-knob experiment (extension)")
		matchers   = flag.Bool("matchers", false, "print the matcher comparison summary (extension)")
		service    = flag.Bool("service", false, "run the scoping-service saturation sweep (extension)")
		export     = flag.String("export", "", "export the datasets (DDL + JSON + linkages) into this directory")
		reportPath = flag.String("report", "", "write a regenerated markdown report to this file")
		all        = flag.Bool("all", false, "regenerate everything")
		fast       = flag.Bool("fast", false, "reduced settings (smaller dimension and grids)")
		dim        = flag.Int("dim", 0, "override signature dimensionality")
		csvDir     = flag.String("csv", "", "also write figure series as CSV files into this directory")
		ckptDir    = flag.String("checkpoint", "",
			"persist sweep cells into this directory; a rerun resumes where a killed run stopped")
		detector = flag.String("detector", "pca:0.5",
			"scoping detector for the Figure 5-6 curves: "+strings.Join(collabscope.Detectors(), ", ")+" (name or name:param)")
		benchJSON = flag.String("benchjson", "",
			"time the evaluation tables and write a machine-readable report (with a machine-speed calibration entry) to this file; compare runs with benchdiff")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *fast {
		cfg = experiments.FastConfig()
		cfg.Dim = 384
	}
	if *dim > 0 {
		cfg.Dim = *dim
	}
	if *ckptDir != "" {
		store, err := checkpoint.Open(*ckptDir)
		fatal(err)
		cfg.Checkpoint = store
	}
	det, err := collabscope.ParseDetector(*detector)
	if err != nil {
		fatal(err)
	}

	r := &runner{cfg: cfg, csvDir: *csvDir, extended: *extended, detector: det}
	if *all {
		r.table2()
		r.table3()
		r.table4()
		r.figure3()
		r.figures56()
		r.figure7()
		r.discussion()
		return
	}
	ran := false
	switch *table {
	case 2:
		r.table2()
		ran = true
	case 3:
		r.table3()
		ran = true
	case 4:
		r.table4()
		ran = true
	}
	switch *figure {
	case 3:
		r.figure3()
		ran = true
	case 5, 6:
		r.figures56()
		ran = true
	case 7:
		r.figure7()
		ran = true
	}
	if *discussion {
		r.discussion()
		ran = true
	}
	if *scale {
		r.scale()
		ran = true
	}
	if *hetero {
		r.hetero()
		ran = true
	}
	if *matchers {
		r.matchers()
		ran = true
	}
	if *service {
		r.service()
		ran = true
	}
	if *export != "" {
		r.export(*export)
		ran = true
	}
	if *reportPath != "" {
		r.report(*reportPath)
		ran = true
	}
	if *benchJSON != "" {
		r.benchJSON(*benchJSON)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

type runner struct {
	cfg      experiments.Config
	csvDir   string
	extended bool
	detector outlier.Detector

	oc3, ocfo *experiments.Encoded
}

func (r *runner) encoded() (*experiments.Encoded, *experiments.Encoded) {
	if r.oc3 == nil {
		r.oc3 = experiments.Encode(r.cfg, datasets.OC3())
		r.ocfo = experiments.Encode(r.cfg, datasets.OC3FO())
	}
	return r.oc3, r.ocfo
}

func (r *runner) table2() {
	fmt.Println("Table 2: Overview of linkable and unlinkable schema elements")
	fmt.Printf("%-14s %7s %11s %9s %11s\n", "Schema", "Tables", "Attributes", "Linkable", "Unlinkable")
	oc3 := datasets.OC3()
	ocfo := datasets.OC3FO()
	row := func(name string, s datasets.Stats) {
		fmt.Printf("%-14s %7d %11d %9d %11d\n", name, s.Tables, s.Attributes, s.Linkable, s.Unlinkable)
	}
	row("OC3", oc3.TotalStats())
	for _, name := range []string{datasets.NameOracle, datasets.NameMySQL, datasets.NameHANA} {
		row("  "+name, oc3.SchemaStats(name))
	}
	row("OC3-FO", ocfo.TotalStats())
	row("  "+datasets.NameFormula, ocfo.SchemaStats(datasets.NameFormula))
	fmt.Println()
}

func (r *runner) table3() {
	fmt.Println("Table 3: Cartesian product size and annotated linkages")
	fmt.Printf("%-22s %12s %12s %5s %5s\n", "Schemas", "Cart.Table", "Cart.Attr", "II", "IS")
	oc3 := datasets.OC3()
	ocfo := datasets.OC3FO()
	ii, is := oc3.Truth.CountByType()
	fmt.Printf("%-22s %12d %12d %5d %5d\n", "OC3",
		schema.CartesianTables(oc3.Schemas), schema.CartesianAttributes(oc3.Schemas), ii, is)
	pairs := [][2]string{
		{datasets.NameOracle, datasets.NameMySQL},
		{datasets.NameOracle, datasets.NameHANA},
		{datasets.NameMySQL, datasets.NameHANA},
	}
	byName := map[string]*schema.Schema{}
	for _, s := range oc3.Schemas {
		byName[s.Name] = s
	}
	for _, p := range pairs {
		a, b := byName[p[0]], byName[p[1]]
		pii, pis := oc3.Truth.CountBetween(p[0], p[1])
		fmt.Printf("%-22s %12d %12d %5d %5d\n", "  "+p[0]+"-"+p[1],
			a.NumTables()*b.NumTables(), a.NumAttributes()*b.NumAttributes(), pii, pis)
	}
	fmt.Printf("%-22s %12d %12d %5d %5d\n", "OC3-FO",
		schema.CartesianTables(ocfo.Schemas), schema.CartesianAttributes(ocfo.Schemas), ii, is)
	fmt.Println("(per-pair rows sum to 39 II / 31 IS; the paper's total row of 36 IS is")
	fmt.Println(" inconsistent with its own pair rows — this repo reproduces the pair rows)")
	fmt.Println()
}

func (r *runner) table4() {
	fmt.Println("Table 4: AUC performance of scoping methods")
	fmt.Printf("%-14s %-13s %-8s %7s %8s %8s %7s\n",
		"Method", "ODA", "Dataset", "AUC-F1", "AUC-ROC", "AUC-ROC'", "AUC-PR")
	oc3, ocfo := r.encoded()
	for _, enc := range []*experiments.Encoded{oc3, ocfo} {
		table4 := experiments.Table4
		if r.extended {
			table4 = experiments.Table4Extended
		}
		rows, err := table4(r.cfg, enc)
		fatal(err)
		for _, row := range rows {
			s := row.Summary
			fmt.Printf("%-14s %-13s %-8s %7.2f %8.2f %8.2f %7.2f\n",
				row.Method, row.ODA, row.Dataset,
				100*s.AUCF1, 100*s.AUCROC, 100*s.AUCROCp, 100*s.AUCPR)
		}
	}
	fmt.Println()
}

func (r *runner) figure3() {
	fmt.Println("Figure 3: global distribution of signatures (1st principal component)")
	_, ocfo := r.encoded()
	bins := experiments.Figure3(r.cfg, ocfo, 12)
	fmt.Printf("%-18s %-18s %s\n", "bin low", "bin high", "counts by schema")
	for _, b := range bins {
		fmt.Printf("%-18.4f %-18.4f %v\n", b.Low, b.High, b.CountBySchema)
	}
	fmt.Println()
}

func (r *runner) figures56() {
	oc3, ocfo := r.encoded()
	for i, enc := range []*experiments.Encoded{oc3, ocfo} {
		figure := 5 + i
		fmt.Printf("Figure %d: best scoping vs collaborative scoping on %s\n", figure, enc.Dataset.Name)
		// The paper's best scoping method, PCA(v=0.5), is the default; the
		// -detector flag swaps in any registered detector.
		sc := experiments.ScopingCurves(r.cfg, enc, r.detector)
		cc, err := experiments.CollaborativeCurves(r.cfg, enc)
		fatal(err)
		for _, cs := range []experiments.CurveSet{sc, cc} {
			fmt.Printf("-- %s\n", cs.Label)
			fmt.Printf("%7s %9s %10s %7s %7s\n", "param", "accuracy", "precision", "recall", "F1")
			for _, e := range cs.Sweep {
				c := e.Confusion
				fmt.Printf("%7.2f %9.3f %10.3f %7.3f %7.3f\n",
					e.Param, c.Accuracy(), c.Precision(), c.Recall(), c.F1())
			}
			r.writeCSV(fmt.Sprintf("figure%d_%s_sweep.csv", figure, slug(cs.Label)),
				[]string{"param", "accuracy", "precision", "recall", "f1"},
				sweepRecords(cs.Sweep))
			r.writeCSV(fmt.Sprintf("figure%d_%s_roc.csv", figure, slug(cs.Label)),
				[]string{"fpr", "tpr"}, pointRecords(cs.ROC))
			r.writeCSV(fmt.Sprintf("figure%d_%s_pr.csv", figure, slug(cs.Label)),
				[]string{"recall", "precision"}, pointRecords(cs.PR))
		}
		fmt.Println()
	}
}

func (r *runner) figure7() {
	oc3, ocfo := r.encoded()
	for _, enc := range []*experiments.Encoded{oc3, ocfo} {
		fmt.Printf("Figure 7: matching ablation on %s (SOTA = original schemas)\n", enc.Dataset.Name)
		figure7 := experiments.Figure7
		if r.extended {
			figure7 = experiments.Figure7Extended
		}
		series, err := figure7(r.cfg, enc)
		fatal(err)
		for _, s := range series {
			fmt.Printf("-- %s  SOTA: PQ=%.3f PC=%.3f F1=%.3f RR=%.3f (%d pairs)\n",
				s.Matcher, s.SOTA.PQ, s.SOTA.PC, s.SOTA.F1, s.SOTA.RR, s.SOTA.Generated)
			fmt.Printf("%7s %7s %7s %7s %7s %7s\n", "v", "PQ", "PC", "F1", "RR", "pairs")
			var recs [][]string
			for i, v := range s.V {
				e := s.Evals[i]
				fmt.Printf("%7.2f %7.3f %7.3f %7.3f %7.3f %7d\n", v, e.PQ, e.PC, e.F1, e.RR, e.Generated)
				recs = append(recs, []string{
					f(v), f(e.PQ), f(e.PC), f(e.F1), f(e.RR), strconv.Itoa(e.Generated),
				})
			}
			r.writeCSV(fmt.Sprintf("figure7_%s_%s.csv", slug(enc.Dataset.Name), slug(s.Matcher)),
				[]string{"v", "pq", "pc", "f1", "rr", "pairs"}, recs)
		}
		fmt.Println()
	}
}

func (r *runner) discussion() {
	fmt.Println("Section 4.4 discussion numbers")
	oc3, ocfo := r.encoded()
	for _, enc := range []*experiments.Encoded{oc3, ocfo} {
		d, err := experiments.Discuss(r.cfg, enc)
		fatal(err)
		fmt.Printf("%-8s passes=%d cartesian=%d (%.2f%%) pruned@v=0.01: %d (%.2f%%), falsely pruned: %d\n",
			enc.Dataset.Name, d.PassOperations, d.CartesianSize, d.PassOverCartPct,
			d.PrunedAtMinV, d.PrunedAtMinVPct, d.FalselyPrunedMin)
	}
	fmt.Println()
}

func (r *runner) scale() {
	fmt.Println("Scalability (extension): synthetic scenarios with growing schema counts")
	fmt.Printf("%4s %9s %12s %12s %12s %12s %11s %11s\n",
		"k", "elements", "sum|Sk|^2", "|S|^2", "ratio", "collab_time", "collab_PR", "global_PR")
	points, err := experiments.Scalability(r.cfg, []int{2, 4, 6, 8, 10}, 2, 17)
	fatal(err)
	for _, p := range points {
		fmt.Printf("%4d %9d %12d %12d %12.3f %12s %11.3f %11.3f\n",
			p.K, p.Elements, p.SumLocalSq, p.UnionSq, p.ComplexityRatio(),
			p.CollabTime.Round(time.Millisecond), p.CollabAUCPR, p.GlobalAUCPR)
	}
	fmt.Println()
}

func (r *runner) hetero() {
	fmt.Println("Heterogeneity knobs (extension): collaborative vs global scoping AUC-PR")
	points, err := experiments.Heterogeneity(r.cfg, experiments.HeterogeneityGrid(23))
	fatal(err)
	fmt.Printf("%-24s %12s %12s %12s\n", "scenario", "collab_PR", "scoping_PR", "advantage")
	for _, p := range points {
		fmt.Printf("%-24s %12.3f %12.3f %+12.3f\n",
			p.Label, p.CollabAUCPR, p.ScopingAUCPR, p.Advantage())
	}
	fmt.Println()
}

// service drives the multi-tenant scoping service to saturation: minted
// tenants upload models through /v1/models, then assess traffic sweeps the
// configured concurrency levels against the hub's admission queue.
func (r *runner) service() {
	cfg := experiments.DefaultServiceBenchConfig()
	cfg.Dim = r.cfg.Dim
	cfg.Seed = r.cfg.Seed
	rep, err := experiments.RunServiceBench(cfg)
	fatal(err)
	rep.Fprint(os.Stdout)
}

// export writes the evaluation datasets as artifact files: one .sql (DDL)
// and one .json per schema, plus the annotated linkages — the offline
// analogue of the paper's artifact repository.
func (r *runner) export(dir string) {
	fatal(os.MkdirAll(dir, 0o755))
	ocfo := datasets.OC3FO()
	for _, s := range ocfo.Schemas {
		sqlFile, err := os.Create(filepath.Join(dir, s.Name+".sql"))
		fatal(err)
		fatal(s.WriteDDL(sqlFile))
		fatal(sqlFile.Close())
		jsonFile, err := os.Create(filepath.Join(dir, s.Name+".json"))
		fatal(err)
		fatal(s.WriteJSON(jsonFile))
		fatal(jsonFile.Close())
	}
	linkFile, err := os.Create(filepath.Join(dir, "linkages.json"))
	fatal(err)
	fatal(ocfo.Truth.WriteJSON(linkFile))
	fatal(linkFile.Close())
	fmt.Printf("exported %d schemas and %d linkages to %s\n",
		len(ocfo.Schemas), ocfo.Truth.Len(), dir)
}

func (r *runner) matchers() {
	oc3, ocfo := r.encoded()
	for _, enc := range []*experiments.Encoded{oc3, ocfo} {
		fmt.Printf("Matcher comparison on %s: SOTA vs best streamlined setting\n", enc.Dataset.Name)
		rows, err := experiments.CompareMatchers(r.cfg, enc)
		fatal(err)
		fmt.Printf("%-12s %26s %8s %26s\n", "matcher", "SOTA PQ/PC/F1", "best v", "scoped PQ/PC/F1")
		for _, row := range rows {
			fmt.Printf("%-12s %8.3f %8.3f %8.3f %8.2f %8.3f %8.3f %8.3f\n",
				row.Matcher, row.SOTA.PQ, row.SOTA.PC, row.SOTA.F1,
				row.BestV, row.Best.PQ, row.Best.PC, row.Best.F1)
		}
		fmt.Println()
	}
}

// benchJSON times every evaluation table and writes the machine-readable
// report benchdiff compares against a committed baseline.
func (r *runner) benchJSON(path string) {
	rep, err := experiments.RunBench(r.cfg)
	fatal(err)
	fh, err := os.Create(path)
	fatal(err)
	fatal(rep.WriteJSON(fh))
	fatal(fh.Close())
	fmt.Printf("wrote %d benchmark entries (%s) to %s\n", len(rep.Entries), rep.Config, path)
}

func (r *runner) writeCSV(name string, header []string, records [][]string) {
	if r.csvDir == "" {
		return
	}
	fatal(os.MkdirAll(r.csvDir, 0o755))
	fpath := filepath.Join(r.csvDir, name)
	fh, err := os.Create(fpath)
	fatal(err)
	defer fh.Close()
	w := csv.NewWriter(fh)
	fatal(w.Write(header))
	fatal(w.WriteAll(records))
	w.Flush()
	fatal(w.Error())
}

func sweepRecords(entries []metrics.SweepEntry) [][]string {
	var out [][]string
	for _, e := range entries {
		c := e.Confusion
		out = append(out, []string{
			f(e.Param), f(c.Accuracy()), f(c.Precision()), f(c.Recall()), f(c.F1()),
		})
	}
	return out
}

func pointRecords(points []metrics.Point) [][]string {
	var out [][]string
	for _, p := range points {
		out = append(out, []string{f(p.X), f(p.Y)})
	}
	return out
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 5, 64) }

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		default:
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	return string(out)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		if hint := collabscope.ExplainError(err); hint != "" {
			fmt.Fprintln(os.Stderr, "benchtables: ("+hint+")")
		}
		os.Exit(1)
	}
}
