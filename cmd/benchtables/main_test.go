package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"collabscope/internal/experiments"
	"collabscope/internal/metrics"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	f()
	w.Close()
	return <-done
}

func TestTable2Output(t *testing.T) {
	r := &runner{cfg: experiments.FastConfig()}
	out := capture(t, r.table2)
	for _, want := range []string{
		"OC3                 18         142        79          81",
		"OC-Oracle          7          43        27          23",
		"OC-MySQL           8          59        34          33",
		"OC-HANA            3          40        18          25",
		"OC3-FO              34         253        79         208",
		"FormulaOne        16         111         0         127",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 output missing %q\n%s", want, out)
		}
	}
}

func TestTable3Output(t *testing.T) {
	r := &runner{cfg: experiments.FastConfig()}
	out := capture(t, r.table3)
	for _, want := range []string{
		"101         6617    39    31",
		"56         2537    14    22",
		"21         1720    10     8",
		"24         2360    15     1",
		"389        22379    39    31",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 output missing %q\n%s", want, out)
		}
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Scoping PCA(v=0.50)":       "scoping_pca_v_0_50",
		"Collaborative Scoping PCA": "collaborative_scoping_pca",
		"LSH(20)":                   "lsh_20",
		"":                          "",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRecordHelpers(t *testing.T) {
	entries := []metrics.SweepEntry{{Param: 0.5}}
	recs := sweepRecords(entries)
	if len(recs) != 1 || len(recs[0]) != 5 {
		t.Fatalf("sweepRecords = %v", recs)
	}
	pts := pointRecords([]metrics.Point{{X: 0.25, Y: 0.75}})
	if len(pts) != 1 || pts[0][0] != "0.25000" || pts[0][1] != "0.75000" {
		t.Fatalf("pointRecords = %v", pts)
	}
}

func TestCSVWriting(t *testing.T) {
	dir := t.TempDir()
	r := &runner{cfg: experiments.FastConfig(), csvDir: dir}
	r.writeCSV("probe.csv", []string{"a", "b"}, [][]string{{"1", "2"}})
	data, err := os.ReadFile(dir + "/probe.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", data)
	}
	// No csvDir: writeCSV is a no-op.
	noDir := &runner{cfg: experiments.FastConfig()}
	noDir.writeCSV("nope.csv", []string{"a"}, nil)
}
