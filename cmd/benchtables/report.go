package main

import (
	"fmt"
	"os"

	"collabscope/internal/datasets"
	"collabscope/internal/experiments"
	"collabscope/internal/schema"
)

// report writes a self-contained markdown report with the regenerated
// tables — a live-run analogue of EXPERIMENTS.md that always reflects the
// current code.
func (r *runner) report(path string) {
	fh, err := os.Create(path)
	fatal(err)
	defer fh.Close()
	w := func(format string, args ...any) {
		_, err := fmt.Fprintf(fh, format, args...)
		fatal(err)
	}

	w("# collabscope — regenerated evaluation report\n\n")
	w("Signature dimensionality: %d. All numbers are deterministic.\n\n", r.cfg.Dim)

	reportTable2(w)
	reportTable3(w)
	r.reportTable4(w)
	r.reportDiscussion(w)

	fmt.Printf("report written to %s\n", path)
}

func reportTable2(w func(string, ...any)) {
	w("## Table 2 — dataset inventory\n\n")
	w("| schema | tables | attributes | linkable | unlinkable |\n")
	w("|---|---|---|---|---|\n")
	oc3 := datasets.OC3()
	ocfo := datasets.OC3FO()
	row := func(name string, s datasets.Stats) {
		w("| %s | %d | %d | %d | %d |\n", name, s.Tables, s.Attributes, s.Linkable, s.Unlinkable)
	}
	row("OC3", oc3.TotalStats())
	for _, name := range []string{datasets.NameOracle, datasets.NameMySQL, datasets.NameHANA} {
		row(name, oc3.SchemaStats(name))
	}
	row("OC3-FO", ocfo.TotalStats())
	row(datasets.NameFormula, ocfo.SchemaStats(datasets.NameFormula))
	w("\n")
}

func reportTable3(w func(string, ...any)) {
	w("## Table 3 — Cartesian sizes and annotated linkages\n\n")
	w("| schemas | cart. tables | cart. attributes | II | IS |\n")
	w("|---|---|---|---|---|\n")
	oc3 := datasets.OC3()
	byName := map[string]*schema.Schema{}
	for _, s := range oc3.Schemas {
		byName[s.Name] = s
	}
	ii, is := oc3.Truth.CountByType()
	w("| OC3 | %d | %d | %d | %d |\n",
		schema.CartesianTables(oc3.Schemas), schema.CartesianAttributes(oc3.Schemas), ii, is)
	for _, p := range [][2]string{
		{datasets.NameOracle, datasets.NameMySQL},
		{datasets.NameOracle, datasets.NameHANA},
		{datasets.NameMySQL, datasets.NameHANA},
	} {
		a, b := byName[p[0]], byName[p[1]]
		pii, pis := oc3.Truth.CountBetween(p[0], p[1])
		w("| %s–%s | %d | %d | %d | %d |\n", p[0], p[1],
			a.NumTables()*b.NumTables(), a.NumAttributes()*b.NumAttributes(), pii, pis)
	}
	w("\n")
}

func (r *runner) reportTable4(w func(string, ...any)) {
	w("## Table 4 — scoping-method AUC comparison (×100)\n\n")
	w("| method | ODA | dataset | AUC-F1 | AUC-ROC | AUC-ROC′ | AUC-PR |\n")
	w("|---|---|---|---|---|---|---|\n")
	oc3, ocfo := r.encoded()
	for _, enc := range []*experiments.Encoded{oc3, ocfo} {
		table4 := experiments.Table4
		if r.extended {
			table4 = experiments.Table4Extended
		}
		rows, err := table4(r.cfg, enc)
		fatal(err)
		for _, row := range rows {
			s := row.Summary
			w("| %s | %s | %s | %.2f | %.2f | %.2f | %.2f |\n",
				row.Method, row.ODA, row.Dataset,
				100*s.AUCF1, 100*s.AUCROC, 100*s.AUCROCp, 100*s.AUCPR)
		}
	}
	w("\n")
}

func (r *runner) reportDiscussion(w func(string, ...any)) {
	w("## §4.4 discussion numbers\n\n")
	w("| dataset | passes | cartesian | passes %% | pruned@v=0.01 | falsely pruned |\n")
	w("|---|---|---|---|---|---|\n")
	oc3, ocfo := r.encoded()
	for _, enc := range []*experiments.Encoded{oc3, ocfo} {
		d, err := experiments.Discuss(r.cfg, enc)
		fatal(err)
		w("| %s | %d | %d | %.2f | %d (%.2f %%) | %d |\n",
			enc.Dataset.Name, d.PassOperations, d.CartesianSize, d.PassOverCartPct,
			d.PrunedAtMinV, d.PrunedAtMinVPct, d.FalselyPrunedMin)
	}
	w("\n")
}
