package collabscope

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"collabscope/internal/leakcheck"
)

// TestWithMetricsEndToEnd: a fully instrumented pipeline run must leave
// spans for every stage, worker-pool instruments, and identical results to
// an uninstrumented run.
func TestWithMetricsEndToEnd(t *testing.T) {
	leakcheck.Guard(t)
	m := NewMetrics()
	var trace bytes.Buffer
	pipe := New(WithDimension(192), WithMetrics(m), WithTraceLog(&trace))
	res, err := pipe.CollaborativeScope(figure1Schemas(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := pipelineForTest().CollaborativeScope(figure1Schemas(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != plain.Kept || res.Pruned != plain.Pruned {
		t.Fatalf("instrumented run diverged: kept %d/%d pruned %d/%d",
			res.Kept, plain.Kept, res.Pruned, plain.Pruned)
	}

	snap := m.Snapshot()
	for _, span := range []string{"span.pipeline.scope", "span.core.fit", "span.core.scope", "span.embed.encode"} {
		h, ok := snap.Histograms[span]
		if !ok || h.Count == 0 {
			t.Errorf("missing span histogram %q in snapshot", span)
		}
	}
	if snap.Counters["parallel.items"] == 0 {
		t.Error("worker pool recorded no items")
	}
	if h := snap.Histograms["parallel.task"]; h.Count == 0 {
		t.Error("worker pool recorded no task latencies")
	}
	for _, want := range []string{`"span":"pipeline.scope"`, `"span":"embed.encode"`, `"elements":`} {
		if !strings.Contains(trace.String(), want) {
			t.Errorf("trace log missing %s", want)
		}
	}
}

// TestMetricsDeterministicAcrossWorkerCounts: instrumentation must not
// perturb results at any parallelism level, and the per-item counters must
// agree across worker counts.
func TestMetricsDeterministicAcrossWorkerCounts(t *testing.T) {
	leakcheck.Guard(t)
	base, err := pipelineForTest().CollaborativeScope(figure1Schemas(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	var items []int64
	for _, workers := range []int{1, 2, 8} {
		m := NewMetrics()
		pipe := New(WithDimension(192), WithParallelism(workers), WithMetrics(m))
		res, err := pipe.CollaborativeScope(figure1Schemas(), 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kept != base.Kept || res.Pruned != base.Pruned {
			t.Fatalf("workers=%d diverged: kept %d want %d", workers, res.Kept, base.Kept)
		}
		items = append(items, m.Snapshot().Counters["parallel.items"])
	}
	if items[0] != items[1] || items[1] != items[2] {
		t.Fatalf("parallel.items varies with worker count: %v", items)
	}
}

// TestMetricsSnapshotJSONRoundTripPublic: the public snapshot read/write
// facade round-trips.
func TestMetricsSnapshotJSONRoundTripPublic(t *testing.T) {
	m := NewMetrics()
	pipe := New(WithDimension(192), WithMetrics(m))
	if _, err := pipe.TrainModel(figure1Schemas()[0], 0.8); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadMetricsSnapshotJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Histograms["span.pipeline.train"].Count != 1 {
		t.Fatalf("round-tripped snapshot lost span.pipeline.train: %+v", snap.Histograms)
	}
}

// TestDisabledMetricsZeroAlloc pins the zero-cost contract at the public
// API layer: a pipeline without WithMetrics must not allocate anything for
// instrumentation on its hot context path.
func TestDisabledMetricsZeroAlloc(t *testing.T) {
	pipe := pipelineForTest()
	if pipe.Metrics() != nil {
		t.Fatal("uninstrumented pipeline should report nil metrics")
	}
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(200, func() {
		if got := pipe.obsContext(ctx); got != ctx {
			t.Fatal("obsContext must return the context unchanged when disabled")
		}
	}); allocs != 0 {
		t.Fatalf("disabled obsContext allocates %.1f per call, want 0", allocs)
	}
}
