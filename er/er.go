// Package er is the public surface of the entity-resolution adaptation of
// collaborative scoping (the paper's §5 future-work direction): multiple
// record sources train local encoder-decoder models over record signatures
// and prune records that no other source recognises, shrinking the blocking
// candidate space ahead of entity matching.
//
//	enc := collabscope.New(collabscope.WithDimension(384)).Encoder()
//	keep, _ := er.Scope(enc, sources, 0.3)
//	cands, _ := er.BlockTopK(enc, sources, keep, 3)
//
// Record signatures are dominated by per-record values rather than shared
// metadata, so useful variance targets sit lower (v ≈ 0.2-0.4) than for
// schema scoping.
package er

import (
	"collabscope"
	"collabscope/internal/ann"
	ier "collabscope/internal/er"
	"collabscope/internal/linalg"
)

// Re-exported entity-resolution types.
type (
	// Record is one entity description from one source.
	Record = ier.Record
	// Source is a named set of records.
	Source = ier.Source
	// CandidatePair is a blocking candidate between two records.
	CandidatePair = ier.CandidatePair
	// Truth is the set of true duplicate pairs.
	Truth = ier.Truth
	// Eval holds blocking quality (PQ, PC, candidate counts).
	Eval = ier.Eval
	// GenConfig controls the synthetic scenario generator.
	GenConfig = ier.GenConfig
)

// NewTruth returns an empty duplicate-pair set.
func NewTruth() *Truth { return ier.NewTruth() }

// Scope runs collaborative scoping over record sources at explained
// variance v: a record is kept iff some other source's model reconstructs
// it within that model's linkability range.
func Scope(enc collabscope.Encoder, sources []Source, v float64) (map[collabscope.ElementID]bool, error) {
	return ier.Scope(enc, sources, v)
}

// BlockTopK generates candidate pairs by exact top-k nearest-neighbour
// search of every kept record against every other source's kept records.
// keep may be nil to block all records.
func BlockTopK(enc collabscope.Encoder, sources []Source, keep map[collabscope.ElementID]bool, k int) ([]CandidatePair, error) {
	return ier.BlockTopK(enc, sources, keep, k)
}

// BlockTopKIndexed is BlockTopK with the neighbour search running on the
// configured ANN index backend (flat, lsh, hnsw, ivf) — sublinear search
// for 10⁵+-record blocking. The config is validated before any source is
// encoded.
func BlockTopKIndexed(enc collabscope.Encoder, sources []Source, keep map[collabscope.ElementID]bool, k int, cfg collabscope.IndexConfig) ([]CandidatePair, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return ier.BlockTopKIndex(enc, sources, keep, k, func(x *linalg.Dense) (ann.Index, error) {
		return ann.Build(x, cfg)
	})
}

// Evaluate scores candidate pairs against the truth.
func Evaluate(cands []CandidatePair, truth *Truth) Eval {
	return ier.Evaluate(cands, truth)
}

// GenerateSources builds a deterministic synthetic two-source scenario with
// known duplicates, source-exclusive noise records, and optionally records
// of an unrelated entity type.
func GenerateSources(cfg GenConfig) (a, b Source, truth *Truth, err error) {
	return ier.GenerateSources(cfg)
}
