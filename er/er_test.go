package er_test

import (
	"testing"

	"collabscope"
	"collabscope/er"
)

func TestPublicERWorkflow(t *testing.T) {
	a, b, truth, err := er.GenerateSources(er.GenConfig{
		Shared: 15, NoiseA: 5, NoiseB: 5, UnrelatedB: 8, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := collabscope.New(collabscope.WithDimension(256)).Encoder()
	sources := []er.Source{a, b}

	keep, err := er.Scope(enc, sources, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != len(a.Records)+len(b.Records) {
		t.Fatalf("verdicts cover %d records", len(keep))
	}
	cands, err := er.BlockTopK(enc, sources, keep, 3)
	if err != nil {
		t.Fatal(err)
	}
	eval := er.Evaluate(cands, truth)
	if eval.Candidates == 0 || eval.PC == 0 {
		t.Fatalf("eval = %+v", eval)
	}
}

func TestPublicTruth(t *testing.T) {
	truth := er.NewTruth()
	x := collabscope.AttributeID("A", "person", "1")
	y := collabscope.AttributeID("B", "person", "2")
	truth.Add(x, y)
	if truth.Len() != 1 {
		t.Fatal("truth add failed")
	}
	if !truth.Contains(er.CandidatePair{A: y, B: x}) {
		t.Fatal("symmetric lookup failed")
	}
}
